type verdict =
  | Equilibrium
  | Disconnected
  | Violation of Swap.move * int
  | Alpha_violation of Alpha_game.move * float

let pp_verdict ppf = function
  | Equilibrium -> Format.pp_print_string ppf "equilibrium"
  | Disconnected -> Format.pp_print_string ppf "disconnected"
  | Violation (mv, d) -> Format.fprintf ppf "violation (%a, delta=%d)" Swap.pp_move mv d
  | Alpha_violation (mv, d) ->
    Format.fprintf ppf "violation (%a, delta=%g)" Alpha_game.pp_move mv d

exception Witness of Swap.move * int

(* First violating move of a single agent, in move-enumeration order.
   Both the sequential and the parallel checkers are built from this
   per-agent scan, so their witnesses coincide. Candidates are evaluated
   by the incremental engine: [Swap_eval.delta_below] returns the exact
   naive delta whenever it is below the cutoff and certifies the skip
   otherwise, so verdicts and witnesses are byte-identical to the
   apply/BFS/undo oracle. *)
let agent_violation_sum eng v =
  try
    Swap.iter_moves (Swap_eval.graph eng) v (fun mv ->
        match Swap_eval.delta_below eng Usage_cost.Sum mv ~cutoff:0 with
        | Some d -> raise (Witness (mv, d))
        | None -> ());
    None
  with Witness (mv, d) -> Some (mv, d)

let agent_violation_max eng v =
  try
    Swap.iter_moves ~include_deletions:true (Swap_eval.graph eng) v (fun mv ->
        (* equilibrium demands deletion *strictly increases* the actor's
           local diameter, so deletions violate already at delta = 0 *)
        let cutoff = match mv with Swap.Swap _ -> 0 | Swap.Delete _ -> 1 in
        match Swap_eval.delta_below eng Usage_cost.Max mv ~cutoff with
        | Some d -> raise (Witness (mv, d))
        | None -> ());
    None
  with Witness (mv, d) -> Some (mv, d)

(* Agents whose move lists were scanned, early exits taken, and — as a
   gauge — the actor index of the last violating move found. The span
   wraps the whole verdict including the connectivity pre-check. Note the
   parallel scan may probe a scheduling-dependent set of agents past the
   witness, so [agents_scanned] is exact only on the sequential path. *)
let m_agents = Telemetry.counter "equilibrium.agents_scanned"

let m_early_exits = Telemetry.counter "equilibrium.early_exits"

let m_violating_agent = Telemetry.gauge "equilibrium.violating_agent"

let m_check = Telemetry.span "equilibrium.check"

(* Fan the per-agent scans across the pool. The engine's bound fallback
   applies and undoes moves on the graph, so every domain works on its
   own [Graph.copy] behind its own engine; [Pool.parallel_find] keeps
   the lowest-agent witness, matching the sequential scan order. The
   sequential engine is shared across agents, so lazily computed
   distance rows amortise over the whole check. *)
let check_with ~agent_violation ?pool g =
  let t0 = Telemetry.start () in
  (* the connectivity pre-check reads vertex 0's row off the engine; on
     the sequential path the scan starts at agent 0, which wants exactly
     that row, so the check costs no extra BFS at all *)
  let eng = Swap_eval.create g in
  let verdict =
    if not (Swap_eval.connected eng) then Disconnected
    else begin
      let n = Graph.n g in
      let witness =
        match pool with
        | Some pool when Pool.jobs pool > 1 ->
          Pool.parallel_find pool ~n
            ~init:(fun () -> Swap_eval.create (Graph.copy g))
            (fun eng v ->
              Telemetry.incr m_agents;
              agent_violation eng v)
        | _ ->
          let rec scan v =
            if v >= n then None
            else begin
              Telemetry.incr m_agents;
              match agent_violation eng v with
              | Some _ as w -> w
              | None -> scan (v + 1)
            end
          in
          scan 0
      in
      match witness with
      | Some (mv, d) ->
        Telemetry.incr m_early_exits;
        Telemetry.set_gauge m_violating_agent (Swap.actor mv);
        Violation (mv, d)
      | None -> Equilibrium
    end
  in
  Telemetry.stop m_check t0;
  verdict

(* The alpha path goes through the same telemetry shell as the basic
   games but scans with [Alpha_game.first_improving_move] — the pool is
   unused (the per-move delta is already an apply/BFS/undo on a private
   copy). Disconnection is reported as [Disconnected], matching the basic
   games, rather than as a Buy witness with delta = -∞. *)
let check_alpha alpha g =
  let t0 = Telemetry.start () in
  let st = Alpha_game.create ~alpha g in
  let verdict =
    if Usage_cost.is_infinite (Usage_cost.social_cost Usage_cost.Sum g) then
      Disconnected
    else begin
      let n = Graph.n g in
      let rec scan v =
        if v >= n then None
        else begin
          Telemetry.incr m_agents;
          match Alpha_game.first_improving_move st v with
          | Some _ as w -> w
          | None -> scan (v + 1)
        end
      in
      match scan 0 with
      | Some (mv, d) ->
        Telemetry.incr m_early_exits;
        Telemetry.set_gauge m_violating_agent (Alpha_game.actor mv);
        Alpha_violation (mv, d)
      | None -> Equilibrium
    end
  in
  Telemetry.stop m_check t0;
  verdict

let check ?pool game g =
  match game with
  | Game.Sum -> check_with ~agent_violation:agent_violation_sum ?pool g
  | Game.Max -> check_with ~agent_violation:agent_violation_max ?pool g
  | Game.Alpha a ->
    ignore pool;
    check_alpha a g

let is_equilibrium ?pool game g = check ?pool game g = Equilibrium

let check_sum ?pool g = check ?pool Game.Sum g

let is_sum_equilibrium ?pool g = is_equilibrium ?pool Game.Sum g

let check_max ?pool g = check ?pool Game.Max g

let is_max_equilibrium ?pool g = is_equilibrium ?pool Game.Max g

(* Ascending non-neighbor candidates of [v], filled into one right-sized
   array — the k-swap/insertion enumerators below call this per vertex,
   where the previous [List.init |> List.filter |> Array.of_list] chain
   churned O(n) list cells each time. *)
let non_neighbors g v =
  let n = Graph.n g in
  let buf = Array.make (max n 1) 0 in
  let k = ref 0 in
  for w = 0 to n - 1 do
    if w <> v && not (Graph.mem_edge g v w) then begin
      buf.(!k) <- w;
      incr k
    end
  done;
  Array.sub buf 0 !k

let find_non_critical_deletion g =
  (* deletion deltas come straight off the engine's cached rows: one
     distance row per endpoint (shared across its edges) plus one drop
     row per directed deletion, instead of two fresh BFS per candidate *)
  let eng = Swap_eval.create g in
  try
    List.iter
      (fun (u, v) ->
        let mu = Swap.Delete { actor = u; drop = v } in
        (match Swap_eval.delta_below eng Usage_cost.Max mu ~cutoff:1 with
        | Some du -> raise (Witness (mu, du))
        | None -> ());
        let mv = Swap.Delete { actor = v; drop = u } in
        match Swap_eval.delta_below eng Usage_cost.Max mv ~cutoff:1 with
        | Some dv -> raise (Witness (mv, dv))
        | None -> ())
      (Graph.edges g);
    None
  with Witness (mv, d) -> Some (mv, d)

let is_deletion_critical g = find_non_critical_deletion g = None

exception Pair of int * int

let find_insertion_violation g =
  let n = Graph.n g in
  let ws = Bfs.create_workspace n in
  let ecc = Array.make n 0 in
  for v = 0 to n - 1 do
    ecc.(v) <- Usage_cost.vertex_cost ws Usage_cost.Max g v
  done;
  try
    List.iter
      (fun (u, v) ->
        Graph.add_edge g u v;
        let eu = Usage_cost.vertex_cost ws Usage_cost.Max g u in
        let ev = Usage_cost.vertex_cost ws Usage_cost.Max g v in
        Graph.remove_edge g u v;
        if eu < ecc.(u) || ev < ecc.(v) then raise (Pair (u, v)))
      (Graph.complement_edges g);
    None
  with Pair (u, v) -> Some (u, v)

let is_insertion_stable g = find_insertion_violation g = None

let is_stable_under_insertions g ~k =
  if k < 0 then invalid_arg "Equilibrium.is_stable_under_insertions";
  let n = Graph.n g in
  let ws = Bfs.create_workspace n in
  let stable = ref true in
  let v = ref 0 in
  while !stable && !v < n do
    let base = Usage_cost.vertex_cost ws Usage_cost.Max g !v in
    let candidates = non_neighbors g !v in
    let chosen = Array.make (max k 1) (-1) in
    (* enumerate all subsets of size 1..k of absent incident edges at v *)
    let rec go depth lo size =
      if not !stable then ()
      else if depth = size then begin
        for i = 0 to size - 1 do
          Graph.add_edge g !v candidates.(chosen.(i))
        done;
        let after = Usage_cost.vertex_cost ws Usage_cost.Max g !v in
        for i = size - 1 downto 0 do
          Graph.remove_edge g !v candidates.(chosen.(i))
        done;
        if after < base then stable := false
      end
      else
        for i = lo to Array.length candidates - (size - depth) do
          if !stable then begin
            chosen.(depth) <- i;
            go (depth + 1) (i + 1) size
          end
        done
    in
    for size = 1 to min k (Array.length candidates) do
      go 0 0 size
    done;
    incr v
  done;
  !stable

(* enumerate all size-[size] subsets of [pool] (given as an array),
   feeding each to [f] as a list; stops early when [f] sets [stop] *)
let iter_subsets pool size stop f =
  let m = Array.length pool in
  let chosen = Array.make (max size 1) 0 in
  let rec go depth lo =
    if !stop then ()
    else if depth = size then begin
      let subset = ref [] in
      for i = size - 1 downto 0 do
        subset := pool.(chosen.(i)) :: !subset
      done;
      f !subset
    end
    else
      for i = lo to m - (size - depth) do
        if not !stop then begin
          chosen.(depth) <- i;
          go (depth + 1) (i + 1)
        end
      done
  in
  if size <= m then go 0 0

let find_k_swap_violation version g ~k =
  if k < 1 then invalid_arg "Equilibrium.find_k_swap_violation";
  let n = Graph.n g in
  let ws = Bfs.create_workspace n in
  let witness = ref None in
  let stop = ref false in
  let v = ref 0 in
  while (not !stop) && !v < n do
    let actor = !v in
    let base = Usage_cost.vertex_cost ws version g actor in
    let neighbors = Graph.neighbors g actor in
    let fresh = non_neighbors g actor in
    let jmax = min k (min (Array.length neighbors) (Array.length fresh)) in
    for j = 1 to jmax do
      iter_subsets neighbors j stop (fun drops ->
          iter_subsets fresh j stop (fun adds ->
              List.iter (fun w -> Graph.remove_edge g actor w) drops;
              List.iter (fun w -> Graph.add_edge g actor w) adds;
              let after = Usage_cost.vertex_cost ws version g actor in
              List.iter (fun w -> Graph.remove_edge g actor w) adds;
              List.iter (fun w -> Graph.add_edge g actor w) drops;
              if after < base then begin
                stop := true;
                witness := Some (actor, List.combine drops adds)
              end))
    done;
    incr v
  done;
  !witness

let is_stable_under_k_swaps version g ~k =
  find_k_swap_violation version g ~k = None

let k_change_stable_sampled rng g ~k ~trials =
  if k < 1 then invalid_arg "Equilibrium.k_change_stable_sampled";
  let n = Graph.n g in
  let ws = Bfs.create_workspace n in
  let stable = ref true in
  let v = ref 0 in
  while !stable && !v < n do
    let base = Usage_cost.vertex_cost ws Usage_cost.Max g !v in
    let nonneighbors = non_neighbors g !v in
    let neigh = Graph.neighbors g !v in
    let t = ref 0 in
    while !stable && !t < trials do
      let j = 1 + Prng.int rng k in
      let j = min j (min (Array.length neigh) (Array.length nonneighbors)) in
      if j >= 1 then begin
        let drop_idx = Prng.sample_distinct rng ~n:(Array.length neigh) ~k:j in
        let add_idx = Prng.sample_distinct rng ~n:(Array.length nonneighbors) ~k:j in
        Array.iter (fun i -> Graph.remove_edge g !v neigh.(i)) drop_idx;
        Array.iter (fun i -> Graph.add_edge g !v nonneighbors.(i)) add_idx;
        let after = Usage_cost.vertex_cost ws Usage_cost.Max g !v in
        Array.iter (fun i -> Graph.remove_edge g !v nonneighbors.(i)) add_idx;
        Array.iter (fun i -> Graph.add_edge g !v neigh.(i)) drop_idx;
        if after < base then stable := false
      end;
      incr t
    done;
    incr v
  done;
  !stable

let eccentricity_spread g =
  Metrics.eccentricities g
  |> Option.map (fun ecc ->
         let lo = Array.fold_left min ecc.(0) ecc in
         let hi = Array.fold_left max ecc.(0) ecc in
         hi - lo)

let lemma3_holds g =
  let n = Graph.n g in
  List.for_all
    (fun v ->
      let label, count = Components.components_without g v in
      (* distance-1 test is adjacency to v; a component is "far" if it has
         a vertex not adjacent to v *)
      let far = Array.make count false in
      for w = 0 to n - 1 do
        if w <> v && not (Graph.mem_edge g v w) then far.(label.(w)) <- true
      done;
      Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 far <= 1)
    (Components.cut_vertices g)
