(** Incremental swap evaluation: the naive oracle ({!Swap.delta}) pays a
    full apply → BFS-from-actor → undo cycle per candidate move, i.e.
    2·O(n + m) BFS per candidate, and recomputes the actor's pre-move cost
    every time. This engine amortises that work across all candidate moves
    of an agent:

    - the actor's pre-move distance vector is one shared row, computed
      once per agent and reused by every candidate;
    - one component split of [G - actor] per agent settles, for every
      incident edge at once, which drops are bridges; bridge swaps are
      then evaluated {e exactly} from cached rows alone (disconnecting
      ones from the split itself, reconnecting ones because the new edge
      is the unique link between the two sides), with no per-move BFS;
    - each non-bridge dropped edge gets one "drop row" (distances from
      the actor with that single edge removed), shared by all swap
      targets of that drop and answering deletion deltas exactly with no
      further BFS;
    - per remaining candidate, sound triangle-inequality lower bounds on
      the post-move cost certify "not improving" without any BFS at all;
    - only candidates the bounds cannot refute fall back to an exact BFS
      on the mutated graph, with an early cutoff that aborts as soon as
      the partial sum (or the running eccentricity) proves the move cannot
      beat the threshold.

    Certified skips and fallback results agree exactly with the naive
    oracle: every verdict, witness move and reported delta is
    byte-identical (property-tested against {!Swap.delta}). See DESIGN.md
    "Incremental swap evaluation" for the soundness argument — in
    particular why the tempting upper bound
    [d'(v,x) <= 1 + d_old(w',x)] is {e unsound} and is not used.

    Telemetry (under [swap_eval.*]): moves evaluated, bound-certified
    skips, exact row answers, BFS fallbacks, cutoff aborts, BFS nodes
    visited, precompute BFS runs, synthesized rows and component-split
    scans. *)

type t
(** An evaluation engine bound to one graph. Distance rows are cached
    per graph state; see {!invalidate}. Not domain-safe — use one engine
    per domain (on its own {!Graph.copy}), mirroring {!Bfs.workspace}
    discipline. *)

val create : Graph.t -> t
(** [create g] binds an engine to [g]. O(n) allocation up front; distance
    rows are allocated lazily, one per requested source. *)

val graph : t -> Graph.t
(** The graph the engine evaluates moves on. *)

val connected : t -> bool
(** Whether the bound graph is connected, answered from vertex 0's
    cached distance row — free when a scan starting at agent 0 follows,
    since that scan needs the row anyway. *)

val invalidate : t -> unit
(** Drop every cached distance row. Must be called after any external
    mutation of the bound graph (the engine's own fallback applies and
    undoes candidate moves internally; that does not require
    invalidation). *)

val delta_below : t -> Usage_cost.version -> Swap.move -> cutoff:int -> int option
(** [delta_below eng version mv ~cutoff] is [Some d] with the {e exact}
    delta [d = Swap.delta ws version g mv] when [d < cutoff], and [None]
    when the engine certifies [d >= cutoff] (possibly without computing
    [d] exactly). [cutoff = 0] asks for strictly improving moves;
    [cutoff = 1] for non-worsening ones (the max-version deletion
    criterion); a current best delta as cutoff prunes to strictly better
    moves only. The graph is returned unchanged. *)

val delta : t -> Usage_cost.version -> Swap.move -> int
(** Exact delta, always computed: equal to {!Swap.delta} on the same
    graph (including the {!Usage_cost.infinite} convention on
    disconnection). *)

(** {1 Per-agent scans}

    Engine-backed equivalents of the naive scans in {!Swap}: identical
    results (same enumeration order, same tie-breaking, and for the
    random variant the same PRNG stream — non-improving candidates do not
    consume randomness in either implementation). *)

val best_move : t -> Usage_cost.version -> int -> (Swap.move * int) option

val first_improving_move : t -> Usage_cost.version -> int -> (Swap.move * int) option

val random_improving_move :
  Prng.t -> t -> Usage_cost.version -> int -> (Swap.move * int) option
