(** Equilibrium predicates and witnesses.

    Everything here is the paper's polynomial-time check "simply try every
    possible edge swap and deletion" — each predicate comes with a
    witness-returning variant so tests and experiments can exhibit the
    violating move rather than just a boolean. All predicates regard
    disconnected graphs as non-equilibria (usage costs are infinite and a
    swap mending connectivity improves). *)

type verdict =
  | Equilibrium
  | Disconnected
  | Violation of Swap.move * int
      (** A move and its (negative, or for max-deletions non-positive)
          delta, for the basic swap games. *)
  | Alpha_violation of Alpha_game.move * float
      (** A Buy/Sell/Swap_owned move and its (negative) delta, for
          [Game.Alpha _]. *)

val pp_verdict : Format.formatter -> verdict -> unit

(** {1 Game-generic entry points}

    Callers that carry a {!Game.t} value (the censuses, the serving
    layer, the hunter, the CLI) go through these instead of
    pattern-matching the game at every call site. *)

val check : ?pool:Pool.t -> Game.t -> Graph.t -> verdict
(** [check game g] is {!check_sum} for [Sum] and {!check_max} for [Max];
    [?pool] as below. For [Alpha a] the scan asks
    {!Alpha_game.first_improving_move} agent by agent (lowest agent,
    first move in enumeration order — the same witness convention as the
    basic games) and reports an {!Alpha_violation}; [?pool] is ignored
    there. *)

val is_equilibrium : ?pool:Pool.t -> Game.t -> Graph.t -> bool

(** {1 Sum version} *)

val check_sum : ?pool:Pool.t -> Graph.t -> verdict
(** Sum equilibrium: no swap strictly decreases the actor's distance sum.
    Deletions never decrease a distance sum so they are not checked.
    With [?pool] the per-agent move scans run across domains, each on its
    own graph copy and BFS workspace; the verdict — including the exact
    witness move — is identical to the sequential scan (lowest agent,
    first move in enumeration order). *)

val is_sum_equilibrium : ?pool:Pool.t -> Graph.t -> bool

(** {1 Max version} *)

val check_max : ?pool:Pool.t -> Graph.t -> verdict
(** Max equilibrium per the paper: no swap strictly decreases the actor's
    local diameter, {b and} every incident deletion strictly increases it.
    A reported [Violation (Delete _, d)] with [d <= 0] is a failure of the
    deletion-criticality half. [?pool] as in {!check_sum}. *)

val is_max_equilibrium : ?pool:Pool.t -> Graph.t -> bool

val is_deletion_critical : Graph.t -> bool
(** Deleting any edge strictly increases the local diameter of both
    endpoints. *)

val find_non_critical_deletion : Graph.t -> (Swap.move * int) option

val is_insertion_stable : Graph.t -> bool
(** Inserting any absent edge decreases the local diameter of neither
    endpoint. *)

val find_insertion_violation : Graph.t -> (int * int) option
(** An absent edge whose insertion strictly lowers some endpoint's local
    diameter. *)

val is_stable_under_insertions : Graph.t -> k:int -> bool
(** Exhaustive: for every vertex [v] and every set of at most [k] absent
    incident edges, inserting the whole set does not decrease [v]'s local
    diameter. This is the stability notion behind the d-dimensional torus
    of Section 4 (stable for [k = d - 1]). Cost grows as C(n, k); intended
    for small instances. *)

val is_stable_under_k_swaps :
  Usage_cost.version -> Graph.t -> k:int -> bool
(** Exhaustive multi-swap stability for either version: for every agent,
    every set of [j <= k] incident edges simultaneously re-pointed at [j]
    distinct fresh targets does not strictly decrease the agent's cost.
    [k = 1] coincides with the single-swap half of the equilibrium
    condition. Cost is C(deg, j)·C(n, j) per agent — intended for small
    instances (the Section 4 trade-off experiments). *)

val find_k_swap_violation :
  Usage_cost.version -> Graph.t -> k:int -> (int * (int * int) list) option
(** Witness for the failure of {!is_stable_under_k_swaps}: the agent and
    the (drop, add) pairing that improves it. *)

val k_change_stable_sampled :
  Prng.t -> Graph.t -> k:int -> trials:int -> bool
(** Randomized check of the stronger "change any k incident edges" notion:
    samples [trials] random (drop-set, add-set) pairs per vertex and
    verifies none decreases the vertex's local diameter. [false] is a
    disproof; [true] is only evidence. *)

(** {1 Structural lemmas} *)

val eccentricity_spread : Graph.t -> int option
(** Max minus min local diameter ([None] when disconnected) — Lemma 2
    asserts this is at most 1 in max equilibrium. *)

val lemma3_holds : Graph.t -> bool
(** For every cut vertex [v], at most one component of [G − v] contains a
    vertex at distance more than 1 from [v]. *)
