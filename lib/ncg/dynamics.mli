(** Better/best-response swap dynamics.

    The game's natural process: agents take turns performing improving edge
    swaps until no one can improve — a swap equilibrium. Swap games are not
    known to be potential games, so the engine detects revisited states by
    hashing the edge set and also enforces a round cap. In the max version
    agents additionally drop extraneous edges (deletions that do not hurt
    their local diameter), which the paper folds into "swap onto an
    existing edge"; deletions strictly decrease the edge count so they
    cannot cycle. *)

val log_src : Logs.Src.t
(** Log source ["bncg.dynamics"]: per-move debug lines and an info line per
    run. Silent unless the application installs a reporter. *)

type rule =
  | Best_response  (** the most-improving move of the scheduled agent *)
  | First_improving  (** the first improving move in scan order *)
  | Random_improving  (** uniform among the agent's improving moves *)
  | Sampled of int
      (** bounded rationality: the agent examines only this many uniformly
          sampled candidate swaps per activation and takes the best
          improving one — the paper's "computationally bounded agents"
          motivation made operational. With this rule a quiet pass does
          not certify equilibrium; the engine still confirms convergence
          with one full scan (without applying moves from it). *)

type schedule =
  | Round_robin  (** agents 0..n-1 in order, repeatedly *)
  | Random_agent  (** uniformly random agent each step *)

type outcome =
  | Converged  (** a full pass found no improving move: swap equilibrium *)
  | Cycled  (** a previously seen graph state recurred *)
  | Round_limit  (** the cap was reached first *)

type config = {
  game : Game.t;
  rule : rule;
  schedule : schedule;
  max_rounds : int;  (** a round = n scheduled agents *)
  allow_deletions : bool;
      (** offer cost-neutral deletions to agents (sensible for [Max];
          default there) *)
  record_trace : bool;  (** keep per-move social cost / diameter series *)
}

val default_config : Game.t -> config
(** Best-response, round-robin, [max_rounds = 10_000]; deletions enabled
    exactly for [Max]; no trace. *)

type step = {
  index : int;  (** move number, from 0 *)
  move : Swap.move;
  delta : int;  (** actor's cost change (< 0, or = 0 for deletions) *)
  social : int;  (** social cost after the move *)
  diameter : int;  (** diameter after the move *)
}

type result = {
  final : Graph.t;
  outcome : outcome;
  rounds : int;
  moves : int;
  trace : step list;  (** chronological; empty unless [record_trace] *)
}

val draw_sampled_candidates :
  Prng.t -> deg:int -> n:int -> budget:int -> (int * int) array
(** The candidate stream of one [Sampled] activation: [budget]
    (drop-index, add) pairs, drawn drop-index-then-add per candidate.
    Exposed so the large-n sampled engine ({!Scale_dynamics} in
    [lib/scale]) consumes the {e same} stream in the same order and
    reproduces this module's move sequences byte-identically; candidate
    {e evaluation} must therefore never consume randomness. *)

val run : ?rng:Prng.t -> config -> Graph.t -> result
(** Runs the dynamics on a copy of the input (the input graph is not
    mutated). The input must be connected. For [Game.Alpha _] the run
    delegates to {!Alpha_game.run_dynamics} (round-robin best-response
    over Buy/Sell/Swap_owned with default ownership); [rule], [schedule],
    [allow_deletions] and [record_trace] are swap-engine refinements and
    are ignored there — the trace comes back empty.
    @raise Invalid_argument on disconnected input. *)

val converge_sum : ?rng:Prng.t -> ?max_rounds:int -> Graph.t -> result
(** Shorthand: sum-version default dynamics. *)

val converge_max : ?rng:Prng.t -> ?max_rounds:int -> Graph.t -> result
