(** The classic α-parameterized network creation game (Fabrikant et al.),
    built as the baseline the paper compares against.

    Each edge is {e owned} by one endpoint, which paid α for it. An
    agent's cost is α·(edges it owns) + Σ distances. Full Nash equilibrium
    (an agent re-chooses its whole edge set) is NP-hard to verify — the
    paper's motivation for swap equilibria — so, as in the follow-up
    literature, this module implements the standard local ("greedy") move
    set: buy one edge, sell one owned edge, or swap one owned edge. Every
    bound the paper proves for swap equilibria applies to the equilibria of
    this game for {e every} α, which experiment E11 checks empirically. *)

type t

type move =
  | Buy of { actor : int; target : int }
  | Sell of { actor : int; target : int }
  | Swap_owned of { actor : int; drop : int; add : int }

val pp_move : Format.formatter -> move -> unit

val move_to_string : move -> string

val create : alpha:float -> ?owner:(int -> int -> int) -> Graph.t -> t
(** Copies the graph. [owner u v] (called with [u < v]) assigns initial
    edge ownership and must return one endpoint; default: the smaller
    endpoint. The assignment is validated eagerly over every edge, so a
    bad owner fails here — naming the offending edge — rather than when
    the edge is first touched by a move.
    @raise Invalid_argument on α < 0 or an owner that is not an endpoint. *)

val alpha : t -> float

val graph : t -> Graph.t
(** The underlying network (do not mutate; use {!apply}). *)

val n : t -> int

val owner : t -> int -> int -> int
(** Owner of an existing edge. *)

val owned_degree : t -> int -> int
(** Number of edges the agent owns. *)

val agent_cost : t -> int -> float
(** α·owned + distance sum; [infinity] when disconnected. *)

val social_cost : t -> float
(** α·m + Σ_u Σ_v d(u,v). *)

val is_applicable : t -> move -> bool

val apply : t -> move -> unit

val undo : t -> move -> unit
(** Inverse of {!apply}. For [Sell]/[Swap_owned] restores the original
    ownership (the actor owned the edge by the applicability rules). *)

val delta : t -> move -> float
(** Actor's cost change; negative improves. *)

val best_move : t -> int -> (move * float) option
(** Most-improving local move of the agent, or [None]. *)

val is_local_equilibrium : t -> bool
(** No agent has an improving buy / sell / owned-swap. *)

val first_improving_move : t -> int -> (move * float) option
(** First strictly improving move of the agent in enumeration order
    (buys ascending, then per owned neighbor a sell followed by
    owned-swaps ascending); the deterministic witness convention. *)

val find_violation : t -> (move * float) option
(** Lowest agent's {!first_improving_move}; [None] iff
    {!is_local_equilibrium}. *)

val best_response_exists : t -> bool
(** Some agent has a strictly improving local move — the witness-level
    query {!Equilibrium.check} dispatches to for [Alpha] games. *)

val actor : move -> int

type outcome = Converged | Cycled | Round_limit

type result = {
  state : t;
  outcome : outcome;
  rounds : int;
  moves : int;
}

val run_dynamics : ?max_rounds:int -> t -> result
(** Round-robin best-response on a copy; default cap 10_000 rounds. *)

val copy : t -> t

val optimal_social_cost : alpha:float -> int -> float
(** Best social cost over the two canonical candidates — the star
    (optimal for α >= 2) and the complete graph (optimal for α <= 2) —
    which [Fabrikant et al.] prove exhausts the optimum:
    min(α(n−1) + 2(n−1) + 2(n−1)(n−2), α·n(n−1)/2 + n(n−1)). *)
