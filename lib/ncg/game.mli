(** First-class game registry.

    Every subsystem that used to pattern-match the closed
    {!Usage_cost.version} enum — the censuses, dynamics, the hunter, the
    serving wire protocol, atlas key namespaces, telemetry labels, the
    CLI — dispatches on a {!t} instead. The two basic games of the paper
    keep their exact historical spellings ([sum], [max]) so existing
    output, atlas keys, and journal headers stay byte-identical; the
    α-parameterized creation game of Fabrikant et al. rides behind
    [alpha:<α>] with the Buy/Sell/Swap_owned local move set implemented
    by {!Alpha_game}. *)

type t =
  | Sum  (** Swap game, usage cost = distance sum (paper, Section 2). *)
  | Max  (** Swap game, usage cost = local diameter (paper, Section 3). *)
  | Alpha of float
      (** α-parameterized creation game: cost α·owned + distance sum,
          deviations Buy/Sell/Swap_owned. The payload is the (finite,
          non-negative) α. *)

val equal : t -> t -> bool

val basic : t -> Usage_cost.version option
(** The underlying two-constructor kernel version for the basic swap
    games; [None] for [Alpha _]. Low-level engines ({!Swap_eval},
    {!Usage_cost}) keep speaking {!Usage_cost.version}; this is the
    bridge down. *)

val is_basic : t -> bool

val of_version : Usage_cost.version -> t
(** The bridge up; total. *)

val to_string : t -> string
(** Canonical string form: ["sum"], ["max"], or ["alpha:1.5"]. The α is
    printed in shortest round-trip form, so
    [of_string (to_string g) = Ok g] for every [g]. For [Sum]/[Max] this
    equals {!Usage_cost.version_name} — atlas keys, journal headers, and
    wire encodings built from it are byte-identical to their historical
    spellings. *)

val of_string : string -> (t, string) result
(** Total parser of the canonical forms, shared by the CLI [--game]
    flag, the RPC ["game"] envelope field, and atlas key namespaces.
    Rejects non-finite or negative α. The error string names the
    offending input and the accepted grammar. *)

val pp : Format.formatter -> t -> unit

val move_set : t -> string
(** Human-readable deviation move set, for docs and telemetry:
    ["swap"], ["swap+delete"], or ["buy/sell/swap-owned"]. *)

val social_cost : t -> Graph.t -> float
(** The cost function the game optimizes socially. [Sum]/[Max] lift
    {!Usage_cost.social_cost} to float ({!Usage_cost.infinite} becomes
    [infinity]); [Alpha a] is α·m + Σ distances with the default
    ownership (social cost does not depend on who owns an edge). *)
