(** Exhaustive classification of small equilibria.

    The paper's tree theorems (1 and 4) and the "all known sum equilibria
    have diameter <= 3" observation are universally quantified statements
    over finite ranges; this module checks them against the {e entire}
    universe of labeled trees / connected graphs in the tractable range,
    producing the E1/E2/E4 tables. *)

type tree_census = {
  n : int;
  total : int;  (** labeled trees examined: n^(n-2) *)
  equilibria : int;  (** labeled count *)
  stars : int;  (** labeled stars among them *)
  double_stars : int;  (** labeled double stars among them (max only) *)
  max_eq_diameter : int;  (** largest equilibrium diameter seen; 0 if none *)
  witnesses_verified : int;
      (** non-equilibrium trees whose proof-witness swap was checked to
          strictly improve *)
}

val tree_census : ?pool:Pool.t -> Game.t -> int -> tree_census
(** Exhaustive over all labeled trees on [n] vertices
    (n <= {!Enumerate.max_tree_vertices}). For the sum version every
    non-star receives the Theorem 1 witness; for max, trees of diameter
    >= 4 receive the Lemma 2 witness and small-diameter trees run the
    generic checker. With [?pool] the Prüfer rank space is sharded
    across domains and the per-shard tallies merged; the resulting
    census record equals the sequential one. *)

type graph_census = {
  n : int;
  connected : int;  (** connected labeled graphs examined *)
  equilibria_labeled : int;
  equilibria_iso : Graph.t list;  (** one representative per iso class *)
  diameter_histogram : (int * int) list;
      (** equilibrium diameter -> iso-class count *)
  max_diameter : int;
}

val merge_tree_census : tree_census -> tree_census -> tree_census
(** Counts add, [max_eq_diameter] maxes. Requires equal [n]. *)

val graph_census :
  ?atlas:Atlas.t -> ?pool:Pool.t -> Game.t -> int -> graph_census
(** Exhaustive over all connected labeled graphs on [n] vertices
    (n <= {!Enumerate.max_graph_vertices}; n = 7 takes minutes
    sequentially). With [?pool] the edge-subset mask space is sharded
    across domains; counts, representatives (first of each class in mask
    order) and histogram equal the sequential results. With [?atlas] the
    per-labeled-graph equilibrium verdict (key
    [eq:<game>:<graph6>], value ["1"]/["0"]) is consulted before the
    scan and populated after a miss; verdicts are identical either way,
    so the census output is byte-for-byte the same with the atlas on or
    off. *)

val merge_graph_census : graph_census -> graph_census -> graph_census
(** Counts add; representatives are re-deduplicated by canonical form
    with the lower-mask shard winning, so folding disjoint adjacent
    shards in order reproduces the full census. Requires equal [n]. *)

val orderly_census :
  ?atlas:Atlas.t -> ?pool:Pool.t -> Game.t -> int -> graph_census
(** The graph census via orderly (canonical-construction-path)
    enumeration: one {!Orderly.iter} visit per isomorphism class, labeled
    counts recovered by orbit-stabilizer ([n!/|Aut|] copies per class)
    and equilibrium representatives reported as minimum-mask labelings in
    ascending mask order — byte-identical to {!graph_census} wherever
    both can run, but reaching [n <=] {!Orderly.max_vertices} (11)
    because the walk is over classes, not the [2^(n(n-1)/2)] mask space.
    Only the basic (isomorphism-invariant) games are supported: the
    α-game's verdict depends on the labeling through edge ownership, so
    orbit-stabilizer counting would be unsound — [Alpha _] raises (or,
    through {!validate_shard}, returns an [Error]).
    [?pool] shards the orderly root range across domains; [?atlas]
    memoizes per-generated-representative verdicts (keys are the orderly
    copies' graph6, so orderly and rank-range runs populate disjoint
    entries). *)

val merge_orderly_census : graph_census -> graph_census -> graph_census
(** Counts add; the disjoint sorted representative lists merge by mask
    key, so any adjacent-merge order reproduces the sequential record.
    Requires equal [n]. *)

val orderly_census_in :
  ?atlas:Atlas.t -> Game.t -> int -> lo:int -> hi:int -> graph_census
(** One shard of the orderly census: only the generation subtrees of
    roots [lo .. hi - 1] at {!Orderly.base_level} (see {!Orderly.iter}).
    @raise Invalid_argument unless [0 <= lo <= hi <= Orderly.space n]. *)

(** {1 Unified shard API}

    One descriptor for "a contiguous piece of a census" — the unit of
    work shared by the serving layer's [census-shard] method, the
    distributed dispatcher ({!Dispatch} in [lib/serve]) and the journal
    format. Ranks are Prüfer ranks for {!Trees}, edge-subset masks for
    {!Graphs} and generation-tree root indices for {!Orderly}; disjoint
    adjacent shards merged in ascending rank order reproduce the full
    census exactly (for {!Orderly}, any adjacent-merge order does). *)

type kind = Trees | Graphs | Orderly

type shard = {
  kind : kind;
  game : Game.t;
  n : int;
  lo : int;  (** inclusive start rank *)
  hi : int;  (** exclusive end rank *)
}

type result =
  | Tree_result of tree_census
  | Graph_result of graph_census
  | Orderly_result of graph_census
      (** Same record as {!Graph_result} — the orderly path computes the
          identical census — but a distinct constructor so merges can
          never mix the two shard geometries. *)

val kind_name : kind -> string
(** The wire name: ["trees"], ["graphs"] or ["orderly"]. *)

val kind_of_name : string -> kind option

val max_shard_vertices : kind -> int
(** {!Enumerate.max_tree_vertices} / {!Enumerate.max_graph_vertices}. *)

val shard_space : kind -> int -> int
(** Size of the full rank space on [n] vertices: [n^(n-2)] labeled trees
    or [2^(n(n-1)/2)] edge masks. [n] must be within
    {!max_shard_vertices}. *)

val full_shard : kind -> Game.t -> int -> shard
(** The whole census as a single shard: [lo = 0], [hi = shard_space].
    @raise Invalid_argument when [n] is out of range. *)

val validate_shard : shard -> (unit, string) Stdlib.result
(** Total bounds check ([n] within the kind's cap, [0 <= lo <= hi <=]
    {!shard_space}), plus the game/kind compatibility rule ({!Orderly}
    requires a basic game); the returned message is suitable for a
    structured [invalid_params] reply. *)

val run_shard : ?atlas:Atlas.t -> shard -> result
(** Classify every tree/graph of the shard's rank range sequentially.
    {!tree_census_in} and {!graph_census_in} are thin wrappers. [?atlas]
    memoizes graph equilibrium verdicts as in {!graph_census}; tree
    shards ignore it (the closed-form tree classification is cheaper
    than a probe). @raise Invalid_argument when {!validate_shard}
    fails. *)

val split : shard -> parts:int -> shard list
(** [split s ~parts] cuts [s] into at most [parts] contiguous,
    near-equal, disjoint shards covering exactly [[s.lo, s.hi)], in
    ascending rank order (fewer when the range is narrower than [parts];
    an empty range stays a single empty shard). Deterministic, so a
    resumed run with the same [parts] reproduces the same boundaries.
    @raise Invalid_argument when [parts < 1]. *)

val merge_result : result -> result -> result
(** {!merge_tree_census} / {!merge_graph_census} behind one type.
    The first argument must be the lower-rank shard.
    @raise Invalid_argument on mixed kinds or different [n]. *)

val tree_census_in : Game.t -> int -> lo:int -> hi:int -> tree_census
(** One shard of the tree census: only the trees of Prüfer rank
    [lo .. hi - 1] (see {!Enumerate.trees_in}). [total] counts the trees
    in the range. Disjoint adjacent shards merged with
    {!merge_tree_census} equal the full census.
    @raise Invalid_argument unless [0 <= lo <= hi <= n^(n-2)]. *)

val graph_census_in :
  ?atlas:Atlas.t -> Game.t -> int -> lo:int -> hi:int -> graph_census
(** One shard of the graph census: only the connected graphs whose
    edge-subset mask lies in [[lo, hi)] (see
    {!Enumerate.connected_graphs_in}). [connected] counts the connected
    graphs in the range. @raise Invalid_argument unless
    [0 <= lo <= hi <= 2^(n(n-1)/2)]. *)
