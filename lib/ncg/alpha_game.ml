type t = {
  alpha : float;
  g : Graph.t;
  owners : (int * int, int) Hashtbl.t;  (* key (min, max) -> owner endpoint *)
  ws : Bfs.workspace;
}

type move =
  | Buy of { actor : int; target : int }
  | Sell of { actor : int; target : int }
  | Swap_owned of { actor : int; drop : int; add : int }

let pp_move ppf = function
  | Buy { actor; target } -> Format.fprintf ppf "%d: buy %d-%d" actor actor target
  | Sell { actor; target } -> Format.fprintf ppf "%d: sell %d-%d" actor actor target
  | Swap_owned { actor; drop; add } ->
    Format.fprintf ppf "%d: swap %d-%d -> %d-%d" actor actor drop actor add

let move_to_string mv = Format.asprintf "%a" pp_move mv

let key u v = (min u v, max u v)

let create ~alpha ?owner g0 =
  if alpha < 0.0 then invalid_arg "Alpha_game.create: negative alpha";
  let g = Graph.copy g0 in
  let owners = Hashtbl.create (2 * Graph.m g) in
  let assign = match owner with Some f -> f | None -> fun u _ -> u in
  (* validate the whole assignment up front: a bad owner must fail here,
     in [create], not later when the edge is first touched by a move *)
  Graph.iter_edges
    (fun u v ->
      let o = assign u v in
      if o <> u && o <> v then
        invalid_arg
          (Printf.sprintf
             "Alpha_game.create: owner %d of edge %d-%d is not an endpoint" o u v);
      Hashtbl.replace owners (key u v) o)
    g;
  { alpha; g; owners; ws = Bfs.create_workspace (Graph.n g) }

let alpha t = t.alpha

let graph t = t.g

let n t = Graph.n t.g

let owner t u v =
  match Hashtbl.find_opt t.owners (key u v) with
  | Some o -> o
  | None -> invalid_arg "Alpha_game.owner: absent edge"

let owned_degree t v =
  Graph.fold_neighbors
    (fun acc w -> if owner t v w = v then acc + 1 else acc)
    0 t.g v

let agent_cost t v =
  let c = Usage_cost.vertex_cost t.ws Usage_cost.Sum t.g v in
  if Usage_cost.is_infinite c then infinity
  else (t.alpha *. float_of_int (owned_degree t v)) +. float_of_int c

let social_cost t =
  let dist = Usage_cost.social_cost Usage_cost.Sum t.g in
  if Usage_cost.is_infinite dist then infinity
  else (t.alpha *. float_of_int (Graph.m t.g)) +. float_of_int dist

let is_applicable t = function
  | Buy { actor; target } ->
    actor <> target && not (Graph.mem_edge t.g actor target)
  | Sell { actor; target } ->
    Graph.mem_edge t.g actor target && owner t actor target = actor
  | Swap_owned { actor; drop; add } ->
    actor <> add && drop <> add
    && Graph.mem_edge t.g actor drop
    && owner t actor drop = actor
    && not (Graph.mem_edge t.g actor add)

let apply t mv =
  if not (is_applicable t mv) then invalid_arg "Alpha_game.apply: not applicable";
  match mv with
  | Buy { actor; target } ->
    Graph.add_edge t.g actor target;
    Hashtbl.replace t.owners (key actor target) actor
  | Sell { actor; target } ->
    Graph.remove_edge t.g actor target;
    Hashtbl.remove t.owners (key actor target)
  | Swap_owned { actor; drop; add } ->
    Graph.remove_edge t.g actor drop;
    Hashtbl.remove t.owners (key actor drop);
    Graph.add_edge t.g actor add;
    Hashtbl.replace t.owners (key actor add) actor

let undo t = function
  | Buy { actor; target } ->
    Graph.remove_edge t.g actor target;
    Hashtbl.remove t.owners (key actor target)
  | Sell { actor; target } ->
    Graph.add_edge t.g actor target;
    Hashtbl.replace t.owners (key actor target) actor
  | Swap_owned { actor; drop; add } ->
    Graph.remove_edge t.g actor add;
    Hashtbl.remove t.owners (key actor add);
    Graph.add_edge t.g actor drop;
    Hashtbl.replace t.owners (key actor drop) actor

let delta t mv =
  let a = match mv with Buy { actor; _ } | Sell { actor; _ } | Swap_owned { actor; _ } -> actor in
  let before = agent_cost t a in
  apply t mv;
  let after = agent_cost t a in
  undo t mv;
  (* infinity - infinity would be NaN; a move from a disconnected state to
     a disconnected state is simply non-improving *)
  if after = infinity then infinity else after -. before

let iter_moves t v f =
  let nv = Graph.n t.g in
  (* snapshot the neighborhood: the callback applies/undoes moves, which
     mutates the live adjacency rows *)
  let neighbors = Graph.neighbors t.g v in
  let is_neighbor w = Array.exists (fun x -> x = w) neighbors in
  for w = 0 to nv - 1 do
    if w <> v && not (is_neighbor w) then f (Buy { actor = v; target = w })
  done;
  Array.iter
    (fun w ->
      if owner t v w = v then begin
        f (Sell { actor = v; target = w });
        for add = 0 to nv - 1 do
          if add <> v && add <> w && not (is_neighbor add) then
            f (Swap_owned { actor = v; drop = w; add })
        done
      end)
    neighbors

let best_move t v =
  let best = ref None in
  iter_moves t v (fun mv ->
      let d = delta t mv in
      if d < -1e-9 then
        match !best with
        | Some (_, bd) when bd <= d -> ()
        | _ -> best := Some (mv, d));
  !best

let is_local_equilibrium t =
  let rec loop v = v >= Graph.n t.g || (best_move t v = None && loop (v + 1)) in
  loop 0

exception Improving of move * float

(* First improving move of one agent, in [iter_moves] enumeration order
   (buys ascending, then per neighbor sell + owned-swaps ascending) — the
   deterministic witness [Equilibrium.check] reports, mirroring the
   lowest-agent / first-move convention of the basic games. *)
let first_improving_move t v =
  try
    iter_moves t v (fun mv ->
        let d = delta t mv in
        if d < -1e-9 then raise (Improving (mv, d)));
    None
  with Improving (mv, d) -> Some (mv, d)

let find_violation t =
  let nv = Graph.n t.g in
  let rec scan v =
    if v >= nv then None
    else
      match first_improving_move t v with Some _ as w -> w | None -> scan (v + 1)
  in
  scan 0

let best_response_exists t = find_violation t <> None

let actor = function
  | Buy { actor; _ } | Sell { actor; _ } | Swap_owned { actor; _ } -> actor

type outcome = Converged | Cycled | Round_limit

type result = { state : t; outcome : outcome; rounds : int; moves : int }

let copy t =
  {
    alpha = t.alpha;
    g = Graph.copy t.g;
    owners = Hashtbl.copy t.owners;
    ws = Bfs.create_workspace (Graph.n t.g);
  }

let state_hash t =
  let acc = ref (Prng.hash64 (Int64.of_int (Graph.n t.g))) in
  Graph.iter_edges
    (fun u v ->
      let o = owner t u v in
      let code = Int64.of_int ((((u * Graph.n t.g) + v) * 2) + if o = u then 0 else 1) in
      acc := Int64.add !acc (Prng.hash64 code))
    t.g;
  Prng.hash64 !acc

let run_dynamics ?(max_rounds = 10_000) t0 =
  let t = copy t0 in
  let nv = Graph.n t.g in
  let seen = Hashtbl.create 1024 in
  Hashtbl.add seen (state_hash t) ();
  let moves = ref 0 in
  let rounds = ref 0 in
  let outcome = ref Round_limit in
  (try
     while !rounds < max_rounds do
       incr rounds;
       let progressed = ref false in
       for v = 0 to nv - 1 do
         match best_move t v with
         | None -> ()
         | Some (mv, _) ->
           apply t mv;
           incr moves;
           progressed := true;
           let h = state_hash t in
           if Hashtbl.mem seen h then begin
             outcome := Cycled;
             raise Exit
           end;
           Hashtbl.add seen h ()
       done;
       if not !progressed then begin
         outcome := Converged;
         raise Exit
       end
     done
   with Exit -> ());
  { state = t; outcome = !outcome; rounds = !rounds; moves = !moves }

let optimal_social_cost ~alpha nv =
  if nv < 1 then invalid_arg "Alpha_game.optimal_social_cost";
  let nf = float_of_int nv in
  let star =
    (alpha *. (nf -. 1.0)) +. (2.0 *. (nf -. 1.0)) +. (2.0 *. (nf -. 1.0) *. (nf -. 2.0))
  in
  let complete = (alpha *. nf *. (nf -. 1.0) /. 2.0) +. (nf *. (nf -. 1.0)) in
  Float.min star complete
