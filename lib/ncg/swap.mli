(** Edge-swap moves: the only operation of the basic game.

    An agent [actor] may replace one incident edge [actor–drop] by another
    incident edge [actor–add]. Swapping onto an existing edge is the
    paper's encoding of deletion, represented explicitly by {!Delete}.

    Evaluation here is the {e naive oracle}: apply the move, BFS from the
    actor, undo — two full BFS per candidate. The equilibrium checkers,
    dynamics and hunts evaluate candidates through {!Swap_eval} instead,
    which amortises distance vectors across an agent's moves and
    bound-certifies most skips; the scans below are kept as the reference
    implementation the engine is differential-tested against. *)

type move =
  | Swap of { actor : int; drop : int; add : int }
      (** Replace edge actor–drop by the (previously absent) edge
          actor–add. *)
  | Delete of { actor : int; drop : int }
      (** Remove edge actor–drop (the "swap onto an existing edge"
          special case). *)

val actor : move -> int

val pp_move : Format.formatter -> move -> unit

val move_to_string : move -> string

val is_applicable : Graph.t -> move -> bool
(** [Swap]: actor–drop present, actor–add absent, all three vertices
    distinct. [Delete]: actor–drop present. *)

val apply : Graph.t -> move -> unit
(** Mutates the graph. @raise Invalid_argument if not applicable. *)

val undo : Graph.t -> move -> unit
(** Exact inverse of {!apply}. *)

val delta : Bfs.workspace -> Usage_cost.version -> Graph.t -> move -> int
(** [delta ws version g mv] is (actor's cost after) − (actor's cost
    before); negative means the move strictly improves the actor. The
    graph is returned unchanged. Disconnection makes the after-cost
    {!Usage_cost.infinite}. This is the naive apply/BFS/undo oracle;
    {!Swap_eval.delta} computes the same value incrementally. *)

val iter_moves :
  ?include_deletions:bool -> Graph.t -> int -> (move -> unit) -> unit
(** All moves available to one agent: each incident edge against each
    non-neighbor, plus (optionally) each incident deletion. Deletions are
    off by default — they never help in the sum version. *)

val iter_all_moves :
  ?include_deletions:bool -> Graph.t -> (move -> unit) -> unit

val best_move :
  Bfs.workspace -> Usage_cost.version -> Graph.t -> int -> (move * int) option
(** Most-improving swap for one agent: the move with the smallest strictly
    negative delta, or [None] at a local optimum. Ties broken by move
    enumeration order. *)

val first_improving_move :
  Bfs.workspace -> Usage_cost.version -> Graph.t -> int -> (move * int) option

val random_improving_move :
  Prng.t ->
  Bfs.workspace ->
  Usage_cost.version ->
  Graph.t ->
  int ->
  (move * int) option
(** Uniformly random improving swap of the agent (scans all candidates,
    reservoir-samples among the improving ones). *)

val move_count : Graph.t -> int -> int
(** Number of swap candidates of one agent (deg · (n − 1 − deg)). *)
