let log_src = Logs.Src.create "bncg.dynamics" ~doc:"best-response swap dynamics"

module Log = (val Logs.src_log log_src)

let m_runs = Telemetry.counter "dynamics.runs"

let m_rounds = Telemetry.counter "dynamics.rounds"

let m_moves = Telemetry.counter "dynamics.moves"

type rule = Best_response | First_improving | Random_improving | Sampled of int

type schedule = Round_robin | Random_agent

type outcome = Converged | Cycled | Round_limit

type config = {
  game : Game.t;
  rule : rule;
  schedule : schedule;
  max_rounds : int;
  allow_deletions : bool;
  record_trace : bool;
}

let default_config game =
  {
    game;
    rule = Best_response;
    schedule = Round_robin;
    max_rounds = 10_000;
    allow_deletions = Game.equal game Game.Max;
    record_trace = false;
  }

type step = {
  index : int;
  move : Swap.move;
  delta : int;
  social : int;
  diameter : int;
}

type result = {
  final : Graph.t;
  outcome : outcome;
  rounds : int;
  moves : int;
  trace : step list;
}

(* A cost-neutral deletion for the max version: remove an incident edge
   without hurting the agent's local diameter.  Strictly decreases m, so it
   can never cycle; it is required to reach deletion-critical states.
   Deletion deltas come straight off the engine's cached drop rows. *)
let find_neutral_deletion eng version v =
  match version with
  | Usage_cost.Sum -> None
  | Usage_cost.Max ->
    let g = Swap_eval.graph eng in
    let best = ref None in
    (* snapshot: the engine's fallback mutates the adjacency rows *)
    Array.iter
      (fun drop ->
        if !best = None then begin
          let mv = Swap.Delete { actor = v; drop } in
          match Swap_eval.delta_below eng version mv ~cutoff:1 with
          | Some d -> best := Some (mv, d)
          | None -> ()
        end)
      (Graph.neighbors g v);
    !best

(* The candidate stream of a bounded agent, shared with the large-n scale
   engine (Scale_dynamics): both implementations draw (drop-index, add)
   pairs through this one function, so their PRNG consumption is equal by
   construction and the sampled engine reproduces these move sequences
   byte-identically. Pairs are drawn up front — candidate evaluation
   consumes no randomness — which is stream-equivalent to drawing them
   interleaved with evaluation. *)
let draw_sampled_candidates rng ~deg ~n ~budget =
  let pairs = Array.make budget (0, 0) in
  for i = 0 to budget - 1 do
    let drop_index = Prng.int rng deg in
    let add = Prng.int rng n in
    pairs.(i) <- (drop_index, add)
  done;
  pairs

(* bounded agent: examine only [budget] uniformly sampled candidate swaps *)
let sampled_move rng eng version v budget =
  let g = Swap_eval.graph eng in
  let n = Graph.n g in
  let neighbors = Graph.neighbors g v in
  let deg = Array.length neighbors in
  if deg = 0 || deg >= n - 1 then None
  else begin
    let best = ref None in
    let pairs = draw_sampled_candidates rng ~deg ~n ~budget in
    Array.iter
      (fun (drop_index, add) ->
        let drop = neighbors.(drop_index) in
        if add <> v && add <> drop && not (Array.exists (fun w -> w = add) neighbors)
        then begin
          let mv = Swap.Swap { actor = v; drop; add } in
          let cutoff = match !best with None -> 0 | Some (_, bd) -> bd in
          match Swap_eval.delta_below eng version mv ~cutoff with
          | Some d -> best := Some (mv, d)
          | None -> ()
        end)
      pairs;
    !best
  end

let pick_move rng eng version cfg v =
  let deletion =
    if cfg.allow_deletions then find_neutral_deletion eng version v else None
  in
  match deletion with
  | Some _ as d -> d
  | None -> (
    match cfg.rule with
    | Best_response -> Swap_eval.best_move eng version v
    | First_improving -> Swap_eval.first_improving_move eng version v
    | Random_improving -> Swap_eval.random_improving_move rng eng version v
    | Sampled budget -> sampled_move rng eng version v budget)

(* The α-game has its own best-response engine (ownership-aware moves,
   float costs); [run] delegates and maps the result into this module's
   record. Rule/schedule refinements and traces are swap-engine features,
   so the α path is plain round-robin best-response without a trace. *)
let run_alpha cfg g0 =
  if not (Components.is_connected g0) then
    invalid_arg "Dynamics.run: input must be connected";
  let alpha =
    match cfg.game with Game.Alpha a -> a | Game.Sum | Game.Max -> assert false
  in
  let r = Alpha_game.run_dynamics ~max_rounds:cfg.max_rounds (Alpha_game.create ~alpha g0) in
  let outcome =
    match r.Alpha_game.outcome with
    | Alpha_game.Converged -> Converged
    | Alpha_game.Cycled -> Cycled
    | Alpha_game.Round_limit -> Round_limit
  in
  Log.info (fun m ->
      m "%s dynamics: %s after %d rounds, %d moves"
        (Game.to_string cfg.game)
        (match outcome with
        | Converged -> "converged"
        | Cycled -> "cycled"
        | Round_limit -> "round limit")
        r.Alpha_game.rounds r.Alpha_game.moves);
  Telemetry.incr m_runs;
  Telemetry.add m_rounds r.Alpha_game.rounds;
  Telemetry.add m_moves r.Alpha_game.moves;
  {
    final = Graph.copy (Alpha_game.graph r.Alpha_game.state);
    outcome;
    rounds = r.Alpha_game.rounds;
    moves = r.Alpha_game.moves;
    trace = [];
  }

let run_basic ?rng version cfg g0 =
  if not (Components.is_connected g0) then
    invalid_arg "Dynamics.run: input must be connected";
  let rng = match rng with Some r -> r | None -> Prng.create 0 in
  let g = Graph.copy g0 in
  let n = Graph.n g in
  let eng = Swap_eval.create g in
  let seen = Hashtbl.create 1024 in
  Hashtbl.add seen (Graph.hash g) ();
  let trace = ref [] in
  let moves = ref 0 in
  let rounds = ref 0 in
  let outcome = ref Round_limit in
  let record mv d =
    Log.debug (fun m -> m "move %d: %s (delta %d)" !moves (Swap.move_to_string mv) d);
    if cfg.record_trace then begin
      let social = Usage_cost.social_cost version g in
      let diameter = Option.value (Metrics.diameter g) ~default:(-1) in
      trace := { index = !moves; move = mv; delta = d; social; diameter } :: !trace
    end;
    incr moves
  in
  (try
     while !rounds < cfg.max_rounds do
       incr rounds;
       let progressed = ref false in
       for slot = 0 to n - 1 do
         let v =
           match cfg.schedule with
           | Round_robin -> slot
           | Random_agent -> Prng.int rng n
         in
         match pick_move rng eng version cfg v with
         | None -> ()
         | Some (mv, d) ->
           Swap.apply g mv;
           Swap_eval.invalidate eng;
           progressed := true;
           record mv d;
           let h = Graph.hash g in
           if Hashtbl.mem seen h then begin
             (* deletions shrink the edge set so only swaps can revisit *)
             match mv with
             | Swap.Swap _ ->
               outcome := Cycled;
               raise Exit
             | Swap.Delete _ -> Hashtbl.replace seen h ()
           end
           else Hashtbl.add seen h ()
       done;
       if not !progressed then begin
         (* A quiet pass under Random_agent scheduling may just have missed
            the busy agents; confirm with a full deterministic scan. *)
         let pending = ref None in
         let v = ref 0 in
         while !pending = None && !v < n do
           pending := pick_move rng eng version { cfg with rule = First_improving } !v;
           incr v
         done;
         match !pending with
         | None ->
           outcome := Converged;
           raise Exit
         | Some (mv, d) -> (
           match cfg.rule with
           | Sampled _ ->
             (* a bounded agent missed its move this pass; keep sampling
                under the budget rather than applying the oracle's move *)
             ()
           | Best_response | First_improving | Random_improving ->
             Swap.apply g mv;
             Swap_eval.invalidate eng;
             record mv d;
             let h = Graph.hash g in
             if Hashtbl.mem seen h then begin
               match mv with
               | Swap.Swap _ ->
                 outcome := Cycled;
                 raise Exit
               | Swap.Delete _ -> Hashtbl.replace seen h ()
             end
             else Hashtbl.add seen h ())
       end
     done
   with Exit -> ());
  Log.info (fun m ->
      m "%s dynamics: %s after %d rounds, %d moves"
        (Game.to_string cfg.game)
        (match !outcome with
        | Converged -> "converged"
        | Cycled -> "cycled"
        | Round_limit -> "round limit")
        !rounds !moves);
  Telemetry.incr m_runs;
  Telemetry.add m_rounds !rounds;
  Telemetry.add m_moves !moves;
  { final = g; outcome = !outcome; rounds = !rounds; moves = !moves; trace = List.rev !trace }

let run ?rng cfg g0 =
  match Game.basic cfg.game with
  | Some version -> run_basic ?rng version cfg g0
  | None -> run_alpha cfg g0

let converge_sum ?rng ?max_rounds g =
  let cfg = default_config Game.Sum in
  let cfg =
    match max_rounds with None -> cfg | Some max_rounds -> { cfg with max_rounds }
  in
  run ?rng cfg g

let converge_max ?rng ?max_rounds g =
  let cfg = default_config Game.Max in
  let cfg =
    match max_rounds with None -> cfg | Some max_rounds -> { cfg with max_rounds }
  in
  run ?rng cfg g
