type move =
  | Swap of { actor : int; drop : int; add : int }
  | Delete of { actor : int; drop : int }

let actor = function Swap { actor; _ } | Delete { actor; _ } -> actor

let pp_move ppf = function
  | Swap { actor; drop; add } ->
    Format.fprintf ppf "%d: %d-%d -> %d-%d" actor actor drop actor add
  | Delete { actor; drop } -> Format.fprintf ppf "%d: delete %d-%d" actor actor drop

let move_to_string mv = Format.asprintf "%a" pp_move mv

let is_applicable g = function
  | Swap { actor; drop; add } ->
    actor <> drop && actor <> add && drop <> add
    && Graph.mem_edge g actor drop
    && not (Graph.mem_edge g actor add)
  | Delete { actor; drop } -> Graph.mem_edge g actor drop

let apply g mv =
  if not (is_applicable g mv) then
    invalid_arg ("Swap.apply: move not applicable: " ^ move_to_string mv);
  match mv with
  | Swap { actor; drop; add } ->
    Graph.remove_edge g actor drop;
    Graph.add_edge g actor add
  | Delete { actor; drop } -> Graph.remove_edge g actor drop

let undo g = function
  | Swap { actor; drop; add } ->
    Graph.remove_edge g actor add;
    Graph.add_edge g actor drop
  | Delete { actor; drop } -> Graph.add_edge g actor drop

let delta ws version g mv =
  let a = actor mv in
  let before = Usage_cost.vertex_cost ws version g a in
  apply g mv;
  let after = Usage_cost.vertex_cost ws version g a in
  undo g mv;
  after - before

let m_candidates = Telemetry.counter "swap.candidates"

let m_pruned = Telemetry.counter "swap.pruned"

let iter_moves ?(include_deletions = false) g v f =
  let n = Graph.n g in
  (* snapshot both the neighbor row and the non-neighbor set up front: the
     callback typically applies/undoes moves, which reorders the live
     adjacency rows mid-iteration. The bitset makes the membership test
     O(1) per candidate, so enumeration is O(deg·n) instead of O(deg²·n). *)
  let neighbors = Graph.neighbors g v in
  let adjacent = Bitset.create n in
  Array.iter (fun w -> Bitset.add adjacent w) neighbors;
  (* closed forms of what the loop below generates and what the bitset
     prunes, so the per-candidate path carries no instrumentation: per
     dropped edge there are n - 1 - deg swap targets and deg adjacent
     candidates rejected by the membership test. *)
  let deg = Array.length neighbors in
  Telemetry.add m_candidates
    ((deg * (n - 1 - deg)) + if include_deletions then deg else 0);
  Telemetry.add m_pruned (deg * deg);
  Array.iter
    (fun drop ->
      if include_deletions then f (Delete { actor = v; drop });
      for add = 0 to n - 1 do
        (* add = drop is already excluded: drop is adjacent *)
        if add <> v && not (Bitset.mem adjacent add) then
          f (Swap { actor = v; drop; add })
      done)
    neighbors

let iter_all_moves ?include_deletions g f =
  for v = 0 to Graph.n g - 1 do
    iter_moves ?include_deletions g v f
  done

let best_move ws version g v =
  let best = ref None in
  iter_moves g v (fun mv ->
      let d = delta ws version g mv in
      if d < 0 then
        match !best with
        | Some (_, bd) when bd <= d -> ()
        | _ -> best := Some (mv, d));
  !best

exception Found of move * int

let first_improving_move ws version g v =
  try
    iter_moves g v (fun mv ->
        let d = delta ws version g mv in
        if d < 0 then raise (Found (mv, d)));
    None
  with Found (mv, d) -> Some (mv, d)

let random_improving_move rng ws version g v =
  (* reservoir sampling: the k-th improving move replaces the current pick
     with probability 1/k, yielding a uniform choice in one pass *)
  let pick = ref None in
  let seen = ref 0 in
  iter_moves g v (fun mv ->
      let d = delta ws version g mv in
      if d < 0 then begin
        incr seen;
        if Prng.int rng !seen = 0 then pick := Some (mv, d)
      end);
  !pick

let move_count g v =
  let deg = Graph.degree g v in
  deg * (Graph.n g - 1 - deg)
