(** Stochastic search for high-diameter equilibria.

    The paper's open frontier on the sum side is the gap between the
    diameter-3 lower bound (Theorem 5) and the 2^O(√lg n) upper bound
    (Theorem 9): no sum equilibrium of diameter 4 is known. This module is
    a local-search harness over the space of connected graphs that hunts
    for equilibria with a prescribed minimum diameter: simulated annealing
    over single-edge toggles, with an objective that counts equilibrium
    violations and penalizes short diameters. Finding nothing proves
    nothing — but found graphs are re-verified with the exhaustive checker
    before being reported, so positives are certificates. *)

val log_src : Logs.Src.t
(** Log source ["bncg.hunt"]: progress at debug level, finds at info. *)

type config = {
  game : Game.t;
  n : int;  (** vertex count of candidate graphs *)
  target_diameter : int;  (** require diameter >= this *)
  steps : int;  (** annealing steps *)
  restarts : int;  (** independent restarts *)
  initial_temperature : float;
}

val default_config :
  ?game:Game.t -> n:int -> target_diameter:int -> unit -> config
(** 4000 steps, 4 restarts, temperature 2.0, sum game. *)

type result = {
  found : Graph.t option;
      (** a verified equilibrium with diameter >= target, if any *)
  best_violations : int;
      (** fewest violating agents seen at target diameter across the
          search (0 exactly when [found] is [Some]) *)
  evaluated : int;  (** candidate graphs scored *)
}

val violating_agents : Game.t -> Graph.t -> int
(** Number of agents holding at least one improving move (the search
    objective; 0 iff equilibrium for connected graphs). For the max version
    an agent also violates by holding a non-critical deletion; for
    [Alpha _] the moves are Buy/Sell/Swap_owned under default
    ownership. *)

val run : Prng.t -> config -> result

val hunt_sum_diameter :
  Prng.t -> n:int -> target_diameter:int -> ?steps:int -> unit -> result
(** Convenience wrapper around {!run} for the sum version. *)
