let unreachable = Bfs.unreachable

(* m_moves / m_fallbacks is the engine's headline ratio: the fraction of
   candidate moves that still needed a per-move BFS. m_certified counts
   bound-certified skips, m_row_exact deletions answered from a cached
   drop row, m_cutoff fallback BFS runs aborted early by the threshold.
   m_nodes counts every node the engine's own BFS pops (precompute rows
   and fallbacks alike), the apples-to-apples figure against the naive
   oracle's [bfs.visits]. *)
let m_moves = Telemetry.counter "swap_eval.moves_evaluated"

let m_certified = Telemetry.counter "swap_eval.certified"

let m_row_exact = Telemetry.counter "swap_eval.row_exact"

let m_fallbacks = Telemetry.counter "swap_eval.bfs_fallbacks"

let m_cutoff = Telemetry.counter "swap_eval.cutoff_aborts"

let m_nodes = Telemetry.counter "swap_eval.bfs_nodes"

let m_precompute = Telemetry.counter "swap_eval.precompute_bfs"

let m_synth = Telemetry.counter "swap_eval.rows_synthesized"

(* vertices touched by per-actor component splits: O(n + m) traversals,
   tallied apart from [bfs_nodes] because they do no distance work *)
let m_aux = Telemetry.counter "swap_eval.aux_scans"

(* One single-source distance vector plus its summaries. [by_far] is the
   vertex order sorted by decreasing distance, built lazily — only the
   max-version bound scan wants it. *)
type row = {
  dist : int array;
  row_sum : int;
  row_ecc : int;
  row_reached : int;
  mutable by_far : int array option;
}

type t = {
  g : Graph.t;
  n : int;
  (* distance rows in the current graph, keyed by source vertex; a row is
     valid while its epoch matches. The actor's pre-move vector is just
     the actor's row, so it is shared with bound evaluations that need
     distances from a swap target. *)
  rows : row option array;
  row_epoch : int array;
  (* drop rows: distances from an agent with one incident edge removed,
     keyed by the dropped neighbor and tagged with the agent they belong
     to. These are exactly the post-move distances of a deletion, and the
     "paths avoiding the new edge" side of the swap bound. *)
  dd : row option array;
  dd_epoch : int array;
  dd_agent : int array;
  (* per-actor split of G - v into components ([label], with the number
     of v-neighbors inside each component in [nbrs]): one traversal per
     actor that settles, for every incident edge vw at once, whether vw
     is a bridge and which vertices hang off it. *)
  aux : (int array * int array) option array;
  aux_epoch : int array;
  mutable epoch : int;
  (* stamped scratch for the bounded fallback BFS *)
  queue : int array;
  stamp : int array;
  sdist : int array;
  mutable gen : int;
}

let create g =
  let n = Graph.n g in
  let cap = max n 1 in
  {
    g;
    n;
    rows = Array.make cap None;
    row_epoch = Array.make cap (-1);
    dd = Array.make cap None;
    dd_epoch = Array.make cap (-1);
    dd_agent = Array.make cap (-1);
    aux = Array.make cap None;
    aux_epoch = Array.make cap (-1);
    epoch = 0;
    queue = Array.make cap 0;
    stamp = Array.make cap (-1);
    sdist = Array.make cap 0;
    gen = 0;
  }

let graph t = t.g

let invalidate t = t.epoch <- t.epoch + 1

(* Full BFS from [src] into [dist], optionally ignoring the edge
   src–skip ([skip = -1] for none). Unreached vertices keep the
   [unreachable] sentinel. Returns (sum, ecc, reached). *)
let bfs_row t src ~skip dist =
  Array.fill dist 0 t.n unreachable;
  dist.(src) <- 0;
  t.queue.(0) <- src;
  let head = ref 0 and tail = ref 1 in
  let sum = ref 0 and ecc = ref 0 in
  while !head < !tail do
    let v = t.queue.(!head) in
    incr head;
    let dnext = dist.(v) + 1 in
    Graph.iter_neighbors
      (fun w ->
        if dist.(w) = unreachable && not (v = src && w = skip) then begin
          dist.(w) <- dnext;
          sum := !sum + dnext;
          if dnext > !ecc then ecc := dnext;
          t.queue.(!tail) <- w;
          incr tail
        end)
      t.g v
  done;
  Telemetry.add m_nodes !head;
  Telemetry.incr m_precompute;
  (!sum, !ecc, !tail)

let make_row t src ~skip prev =
  let dist = match prev with Some r -> r.dist | None -> Array.make t.n 0 in
  let sum, ecc, reached = bfs_row t src ~skip dist in
  { dist; row_sum = sum; row_ecc = ecc; row_reached = reached; by_far = None }

let get_row t src =
  match t.rows.(src) with
  | Some r when t.row_epoch.(src) = t.epoch -> r
  | prev ->
    let r = make_row t src ~skip:(-1) prev in
    t.rows.(src) <- Some r;
    t.row_epoch.(src) <- t.epoch;
    r

let get_aux t v =
  match t.aux.(v) with
  | Some a when t.aux_epoch.(v) = t.epoch -> a
  | _ ->
    let label, count = Components.components_without t.g v in
    let nbrs = Array.make (max count 1) 0 in
    Array.iter (fun w -> nbrs.(label.(w)) <- nbrs.(label.(w)) + 1)
      (Graph.neighbors t.g v);
    Telemetry.add m_aux t.n;
    let a = (label, nbrs) in
    t.aux.(v) <- Some a;
    t.aux_epoch.(v) <- t.epoch;
    a

(* [is_bridge]: vw disconnects iff w's side of G - v has no other edge
   back to v. When it holds, the drop row needs no BFS at all: removing
   a bridge leaves every shortest path on the actor's side intact (a
   simple path cannot cross the bridge and return), and strands w's
   side entirely — so the row is the actor's row with w's component
   overwritten by the unreachable sentinel, a pure array copy. *)
let is_bridge t actor drop =
  let label, nbrs = get_aux t actor in
  nbrs.(label.(drop)) = 1

let synth_drop_row t actor drop prev =
  let arow = get_row t actor in
  let label, _ = get_aux t actor in
  let c = label.(drop) in
  let dist = match prev with Some r -> r.dist | None -> Array.make t.n 0 in
  let sum = ref 0 and ecc = ref 0 and reached = ref 0 in
  for x = 0 to t.n - 1 do
    let d = if x <> actor && label.(x) = c then unreachable else arow.dist.(x) in
    dist.(x) <- d;
    if d <> unreachable then begin
      sum := !sum + d;
      if d > !ecc then ecc := d;
      incr reached
    end
  done;
  Telemetry.incr m_synth;
  { dist; row_sum = !sum; row_ecc = !ecc; row_reached = !reached; by_far = None }

let get_drop_row t actor drop =
  match t.dd.(drop) with
  | Some r when t.dd_epoch.(drop) = t.epoch && t.dd_agent.(drop) = actor -> r
  | prev ->
    let r =
      if is_bridge t actor drop then synth_drop_row t actor drop prev
      else make_row t actor ~skip:drop prev
    in
    t.dd.(drop) <- Some r;
    t.dd_epoch.(drop) <- t.epoch;
    t.dd_agent.(drop) <- actor;
    r

let by_far_of n r =
  match r.by_far with
  | Some o -> o
  | None ->
    let o = Array.init n (fun i -> i) in
    Array.sort (fun a b -> compare r.dist.(b) r.dist.(a)) o;
    r.by_far <- Some o;
    o

let connected t = t.n <= 1 || (get_row t 0).row_reached = t.n

let cost_of_row version n r =
  if r.row_reached < n then Usage_cost.infinite
  else match version with Usage_cost.Sum -> r.row_sum | Usage_cost.Max -> r.row_ecc

(* Any finite distance in an n-vertex graph is < n, so clamping the
   unreachable sentinel to n keeps every arithmetic bound below both
   sound and overflow-free. *)
let clamp n d = if d > n then n else d

(* Bounded exact evaluation: BFS from [src] on the (already mutated)
   graph, aborting as soon as the result provably reaches [target].
   Returns (cost, aborted): when not aborted the cost is exact
   ({!Usage_cost.infinite} on disconnection). *)
let bounded_cost t version ~target src =
  t.gen <- t.gen + 1;
  let gen = t.gen in
  t.sdist.(src) <- 0;
  t.stamp.(src) <- gen;
  t.queue.(0) <- src;
  let head = ref 0 and tail = ref 1 in
  let sum = ref 0 and ecc = ref 0 in
  let aborted = ref false in
  while (not !aborted) && !head < !tail do
    let v = t.queue.(!head) in
    incr head;
    let dnext = t.sdist.(v) + 1 in
    Graph.iter_neighbors
      (fun w ->
        if t.stamp.(w) <> gen then begin
          t.stamp.(w) <- gen;
          t.sdist.(w) <- dnext;
          sum := !sum + dnext;
          if dnext > !ecc then ecc := dnext;
          t.queue.(!tail) <- w;
          incr tail
        end)
      t.g v;
    match version with
    | Usage_cost.Max -> if !ecc >= target then aborted := true
    | Usage_cost.Sum ->
      (* BFS level property: every vertex not yet pushed while popping a
         depth-(dnext-1) node is at distance >= dnext *)
      if !sum + ((t.n - !tail) * dnext) >= target then aborted := true
  done;
  Telemetry.add m_nodes !head;
  if !aborted then (0, true)
  else if !tail < t.n then (Usage_cost.infinite, false)
  else
    ((match version with Usage_cost.Sum -> !sum | Usage_cost.Max -> !ecc), false)

let fallback t version ~cutoff ~before mv =
  Telemetry.incr m_fallbacks;
  Swap.apply t.g mv;
  let after, aborted =
    bounded_cost t version ~target:(before + cutoff) (Swap.actor mv)
  in
  Swap.undo t.g mv;
  if aborted then begin
    Telemetry.incr m_cutoff;
    None
  end
  else begin
    let d = after - before in
    if d < cutoff then Some d else None
  end

(* Sound per-vertex lower bound on the post-move distance from the actor,
   for the swap drop w / add w'. Write H = G - vw and G' = H + vw'. A
   shortest v–x path in G' either avoids vw' (then it lives in H, length
   >= dd(x)) or uses vw' as its first edge (simple paths use an edge
   incident to their endpoint only there), leaving a w'–x segment inside
   G' - v = H - v, of length >= d_H(w',x). Two sound lower bounds on
   d_H(w',x): removal only lengthens, so d_H(w',x) >= d_G(w',x) — read
   exactly off the (cached, shared across actors) distance row of w' —
   and the triangle through v in H gives d_H(w',x) >= |dd(x) - dd(w')|.
   Hence
     d'(v,x) >= min(dd(x), 1 + max(1, d_G(w',x), |dd(x) - dd(w')|))
   for x <> w', and d'(v,w') = 1 exactly. All distances clamped at n, so
   the bound stays sound (any finite distance is < n) when a term is an
   unreachable sentinel. On a tree both cases are tight — the unique
   G'-path from v either survives from H or rides the new edge and then
   runs inside w's old subtree, where G-distances from w' are unchanged —
   so every non-improving tree swap is certified without BFS.

   Before any of that, the actor's component split settles disconnection
   exactly: if vw is a bridge and w' lies on the actor's side, the new
   edge reconnects nothing and the after-cost is exactly infinite —
   answered with no distance row at all. If w' lies on w's side, H has
   exactly two components and vw' rejoins them, so the bounds below
   apply as usual (with the drop row synthesized, not BFS-computed,
   whenever vw is a bridge). *)
let eval_swap t version ~cutoff ~actor ~drop ~add =
  let n = t.n in
  let arow = get_row t actor in
  let before = cost_of_row version n arow in
  let label, nbrs = get_aux t actor in
  if
    (not (Usage_cost.is_infinite before))
    && nbrs.(label.(drop)) = 1
    && label.(add) <> label.(drop)
  then begin
    (* vw is a bridge and the new edge lands on the actor's side: w's
       component stays stranded, the after-cost is exactly infinite —
       answered from the component split alone, with no distance row *)
    Telemetry.incr m_row_exact;
    let d = Usage_cost.infinite - before in
    if d < cutoff then Some d else None
  end
  else if
    (not (Usage_cost.is_infinite before)) && nbrs.(label.(drop)) = 1
  then begin
    (* vw is a bridge and w' sits on w's side c: in G' the new edge vw'
       is the sole link between c and the rest again, so the move is
       exact from cached rows alone — distances off c are untouched
       (arow), distances into c ride the new edge first and then run
       inside c, where G-distances from w' are intra-component already:
       d'(x) = 1 + d_G(w', x). No per-move BFS, no bound slack. *)
    let addrow = get_row t add in
    let c = label.(drop) in
    Telemetry.incr m_row_exact;
    let after =
      match version with
      | Usage_cost.Sum ->
        let s = ref 0 in
        for x = 0 to n - 1 do
          if x <> actor then
            s :=
              !s
              + (if label.(x) = c then 1 + addrow.dist.(x) else arow.dist.(x))
        done;
        !s
      | Usage_cost.Max ->
        let e = ref 0 in
        for x = 0 to n - 1 do
          if x <> actor then begin
            let d =
              if label.(x) = c then 1 + addrow.dist.(x) else arow.dist.(x)
            in
            if d > !e then e := d
          end
        done;
        !e
    in
    let d = after - before in
    if d < cutoff then Some d else None
  end
  else begin
  let ddrow = get_drop_row t actor drop in
  let target = before + cutoff in
  let certified =
    if Usage_cost.is_infinite before then false
    else begin
      let addrow = get_row t add in
      let a_h = clamp n ddrow.dist.(add) in
      let via x =
        if x = add then 1
        else begin
          let t1 = clamp n addrow.dist.(x) in
          let t2 = abs (clamp n ddrow.dist.(x) - a_h) in
          1 + max 1 (max t1 t2)
        end
      in
      match version with
      | Usage_cost.Sum ->
        (* certified once the lower bounds collected so far, plus >= 1
           for every vertex not yet scanned, already reach the target *)
        let lb = ref 0 in
        let remaining = ref (n - 1) in
        let ok = ref false in
        let x = ref 0 in
        while (not !ok) && !x < n do
          if !x <> actor then begin
            lb := !lb + min (clamp n ddrow.dist.(!x)) (via !x);
            decr remaining;
            if !lb + !remaining >= target then ok := true
          end;
          incr x
        done;
        !ok
      | Usage_cost.Max ->
        (* one vertex provably still at distance >= target suffices; scan
           in decreasing drop-row distance so the far vertices come
           first, and stop once the drop row itself drops below target *)
        let order = by_far_of n ddrow in
        let ok = ref false in
        let stop = ref false in
        let i = ref 0 in
        while (not !ok) && (not !stop) && !i < n do
          let x = order.(!i) in
          incr i;
          if x <> actor then begin
            if clamp n ddrow.dist.(x) < target then stop := true
            else if x <> add && via x >= target then ok := true
          end
        done;
        !ok
    end
  in
  if certified then begin
    Telemetry.incr m_certified;
    None
  end
  else fallback t version ~cutoff ~before (Swap.Swap { actor; drop; add })
  end

let delta_below t version mv ~cutoff =
  Telemetry.incr m_moves;
  match mv with
  | Swap.Swap { actor; drop; add } -> eval_swap t version ~cutoff ~actor ~drop ~add
  | Swap.Delete { actor; drop } ->
    (* the drop row is the exact post-deletion distance vector *)
    let arow = get_row t actor in
    let before = cost_of_row version t.n arow in
    let ddrow = get_drop_row t actor drop in
    let after = cost_of_row version t.n ddrow in
    Telemetry.incr m_row_exact;
    let d = after - before in
    if d < cutoff then Some d else None

let delta t version mv =
  (* a cutoff no finite delta reaches: bounds never certify against it
     and the fallback BFS never aborts, so the result is always exact *)
  match delta_below t version mv ~cutoff:(max_int / 2) with
  | Some d -> d
  | None -> assert false

let best_move t version v =
  let best = ref None in
  Swap.iter_moves t.g v (fun mv ->
      let cutoff = match !best with None -> 0 | Some (_, bd) -> bd in
      match delta_below t version mv ~cutoff with
      | Some d -> best := Some (mv, d)
      | None -> ());
  !best

exception Found of Swap.move * int

let first_improving_move t version v =
  try
    Swap.iter_moves t.g v (fun mv ->
        match delta_below t version mv ~cutoff:0 with
        | Some d -> raise (Found (mv, d))
        | None -> ());
    None
  with Found (mv, d) -> Some (mv, d)

let random_improving_move rng t version v =
  (* reservoir sampling over the improving moves, identical to the naive
     scan: certified-non-improving candidates consume no randomness there
     either, so the PRNG streams coincide *)
  let pick = ref None in
  let seen = ref 0 in
  Swap.iter_moves t.g v (fun mv ->
      match delta_below t version mv ~cutoff:0 with
      | Some d ->
        incr seen;
        if Prng.int rng !seen = 0 then pick := Some (mv, d)
      | None -> ());
  !pick
