(* Shard spans cover one [fold ~lo ~hi] range each; the sequential census
   is the single-shard case, so [census.shard.calls] doubles as the shard
   count of the last run. Canonical hits are equilibria whose isomorphism
   class was already represented inside the shard. *)
let m_shard = Telemetry.span "census.shard"

let m_trees = Telemetry.counter "census.trees_classified"

let m_canon_hits = Telemetry.counter "census.canon_hits"

let m_canon_misses = Telemetry.counter "census.canon_misses"

type tree_census = {
  n : int;
  total : int;
  equilibria : int;
  stars : int;
  double_stars : int;
  max_eq_diameter : int;
  witnesses_verified : int;
}

(* Mutable per-shard accumulator: the sequential census is the
   single-shard case, and the parallel census merges one of these per
   chunk (all fields combine with + or max, so merge order is
   irrelevant). *)
type tree_tally = {
  mutable t_total : int;
  mutable t_equilibria : int;
  mutable t_stars : int;
  mutable t_double_stars : int;
  mutable t_max_diameter : int;
  mutable t_witnesses : int;
}

let fresh_tally () =
  {
    t_total = 0;
    t_equilibria = 0;
    t_stars = 0;
    t_double_stars = 0;
    t_max_diameter = 0;
    t_witnesses = 0;
  }

let merge_tally a b =
  {
    t_total = a.t_total + b.t_total;
    t_equilibria = a.t_equilibria + b.t_equilibria;
    t_stars = a.t_stars + b.t_stars;
    t_double_stars = a.t_double_stars + b.t_double_stars;
    t_max_diameter = max a.t_max_diameter b.t_max_diameter;
    t_witnesses = a.t_witnesses + b.t_witnesses;
  }

let classify_tree game tally g =
  let record_eq g =
    (* the shape classification is cheap; cross-validate every accepted
       tree against the generic checker so the census is fully verified *)
    assert (Equilibrium.is_equilibrium game g);
    tally.t_equilibria <- tally.t_equilibria + 1;
    if Tree_eq.is_star g then tally.t_stars <- tally.t_stars + 1;
    if Tree_eq.is_double_star g then
      tally.t_double_stars <- tally.t_double_stars + 1;
    match Metrics.diameter g with
    | Some d -> if d > tally.t_max_diameter then tally.t_max_diameter <- d
    | None -> assert false
  in
  tally.t_total <- tally.t_total + 1;
  Telemetry.incr m_trees;
  match game with
  | Game.Sum ->
    if Tree_eq.is_star g then record_eq g
    else begin
      (* Theorem 1 witness: verified-improving swap on every non-star *)
      match Tree_eq.theorem1_witness g with
      | Some _ -> tally.t_witnesses <- tally.t_witnesses + 1
      | None ->
        (* diameter <= 2 tree that is not a star: impossible *)
        assert false
    end
  | Game.Max ->
    if Tree_eq.max_eq_tree g then record_eq g
    else begin
      match Tree_eq.theorem4_witness g with
      | Some _ -> tally.t_witnesses <- tally.t_witnesses + 1
      | None ->
        (* diameter <= 3 non-equilibrium: confirm with the generic
           checker that an improving move indeed exists *)
        assert (not (Equilibrium.is_max_equilibrium g));
        tally.t_witnesses <- tally.t_witnesses + 1
    end
  | Game.Alpha _ ->
    (* no closed-form shape theorem for the α-game: the generic checker
       is both the classifier and, on non-equilibria, the witness (it
       exhibits the improving Buy/Sell/Swap_owned move) *)
    if Equilibrium.is_equilibrium game g then record_eq g
    else tally.t_witnesses <- tally.t_witnesses + 1

let census_of_tally n t =
  {
    n;
    total = t.t_total;
    equilibria = t.t_equilibria;
    stars = t.t_stars;
    double_stars = t.t_double_stars;
    max_eq_diameter = t.t_max_diameter;
    witnesses_verified = t.t_witnesses;
  }

let tree_census ?pool game n =
  let tally =
    match pool with
    | Some pool when Pool.jobs pool > 1 ->
      (* shard the Prüfer rank space; each chunk re-seeds its own
         odometer, so shards are independent and cover [0, n^(n-2)) *)
      Pool.fold_chunks pool ~n:(Enumerate.count_trees n)
        ~fold:(fun ~lo ~hi ->
          let t0 = Telemetry.start () in
          let tally = fresh_tally () in
          Enumerate.trees_in n ~lo ~hi (classify_tree game tally);
          Telemetry.stop m_shard t0;
          tally)
        ~reduce:merge_tally ~zero:(fresh_tally ())
    | _ ->
      let t0 = Telemetry.start () in
      let tally = fresh_tally () in
      Enumerate.trees n (classify_tree game tally);
      Telemetry.stop m_shard t0;
      tally
  in
  census_of_tally n tally

let merge_tree_census a b =
  if a.n <> b.n then invalid_arg "Census.merge_tree_census: different n";
  {
    n = a.n;
    total = a.total + b.total;
    equilibria = a.equilibria + b.equilibria;
    stars = a.stars + b.stars;
    double_stars = a.double_stars + b.double_stars;
    max_eq_diameter = max a.max_eq_diameter b.max_eq_diameter;
    witnesses_verified = a.witnesses_verified + b.witnesses_verified;
  }

type graph_census = {
  n : int;
  connected : int;
  equilibria_labeled : int;
  equilibria_iso : Graph.t list;
  diameter_histogram : (int * int) list;
  max_diameter : int;
}

(* One shard of the connected-graph sweep: counts plus the first
   representative of each isomorphism class in mask order. Keeping reps
   as an ordered assoc list makes the chunk-ordered merge reproduce the
   sequential first-seen choice exactly. *)
type graph_shard = {
  s_connected : int;
  s_labeled : int;
  s_reps : (string * Graph.t) list;
}

let empty_shard = { s_connected = 0; s_labeled = 0; s_reps = [] }

(* Atlas key for one labeled graph's equilibrium verdict. The verdict is
   per labeled graph (graph6), not per isomorphism class, so a probe can
   never change which representative a shard reports first. *)
let atlas_key game g = "eq:" ^ Game.to_string game ^ ":" ^ Graph6.encode g

(* Consult-then-populate: a hit short-circuits the equilibrium scan, a
   miss computes and appends. Identical verdicts either way, so census
   outputs are byte-identical with the atlas on or off. *)
let is_equilibrium_via ?atlas game g =
  match atlas with
  | None -> Equilibrium.is_equilibrium game g
  | Some a -> (
      let key = atlas_key game g in
      match Atlas.find a key with
      | Some v -> v = "1"
      | None ->
          let r = Equilibrium.is_equilibrium game g in
          Atlas.add a ~key ~value:(if r then "1" else "0");
          r)

let graph_shard_of_range ?atlas game n ~lo ~hi =
  let connected = ref 0 in
  let labeled = ref 0 in
  let seen = Hashtbl.create 64 in
  let reps = ref [] in
  let t0 = Telemetry.start () in
  Enumerate.connected_graphs_in n ~lo ~hi (fun g ->
      incr connected;
      if is_equilibrium_via ?atlas game g then begin
        incr labeled;
        let key = Canon.canonical_form g in
        if Hashtbl.mem seen key then Telemetry.incr m_canon_hits
        else begin
          Telemetry.incr m_canon_misses;
          Hashtbl.add seen key ();
          reps := (key, g) :: !reps
        end
      end);
  Telemetry.stop m_shard t0;
  { s_connected = !connected; s_labeled = !labeled; s_reps = List.rev !reps }

let merge_shard a b =
  (* first-seen-wins per class; [a] precedes [b] in mask order. The rep
     lists are a handful of equilibrium classes, so the quadratic assoc
     scan is noise next to the enumeration itself. *)
  let fresh =
    List.filter (fun (k, _) -> not (List.mem_assoc k a.s_reps)) b.s_reps
  in
  (* representatives discovered independently in two shards are canonical
     hits resolved at merge time rather than inside a shard *)
  Telemetry.add m_canon_hits (List.length b.s_reps - List.length fresh);
  {
    s_connected = a.s_connected + b.s_connected;
    s_labeled = a.s_labeled + b.s_labeled;
    s_reps = a.s_reps @ fresh;
  }

let census_of_graph_shard n shard =
  let iso = List.map snd shard.s_reps in
  let diams =
    List.map
      (fun g -> match Metrics.diameter g with Some d -> d | None -> assert false)
      iso
  in
  {
    n;
    connected = shard.s_connected;
    equilibria_labeled = shard.s_labeled;
    equilibria_iso = iso;
    diameter_histogram = Stats.histogram (Array.of_list diams);
    max_diameter = List.fold_left max 0 diams;
  }

let graph_census ?atlas ?pool game n =
  let total = Enumerate.graph_mask_count n in
  let shard =
    match pool with
    | Some pool when Pool.jobs pool > 1 ->
      (* the atlas handle is domain-safe: the index is sharded under
         mutexes and appends funnel through its single appender *)
      Pool.fold_chunks pool ~n:total
        ~fold:(fun ~lo ~hi -> graph_shard_of_range ?atlas game n ~lo ~hi)
        ~reduce:merge_shard ~zero:empty_shard
    | _ -> graph_shard_of_range ?atlas game n ~lo:0 ~hi:total
  in
  census_of_graph_shard n shard

let merge_graph_census a b =
  (* the serving layer splits a requested shard into deadline-checked
     sub-ranges; merging re-deduplicates representatives by canonical
     form, first-seen (= lowest mask, [a] before [b]) wins — the same
     discipline as the parallel census merge *)
  if a.n <> b.n then invalid_arg "Census.merge_graph_census: different n";
  let key g = Canon.canonical_form g in
  let a_keys = List.map key a.equilibria_iso in
  let fresh =
    List.filter (fun g -> not (List.mem (key g) a_keys)) b.equilibria_iso
  in
  let shard =
    {
      s_connected = a.connected + b.connected;
      s_labeled = a.equilibria_labeled + b.equilibria_labeled;
      s_reps =
        List.map (fun g -> (key g, g)) a.equilibria_iso
        @ List.map (fun g -> (key g, g)) fresh;
    }
  in
  census_of_graph_shard a.n shard

(* --- orderly census -------------------------------------------------------

   Same outputs as the rank-range graph census, produced from one
   canonical representative per isomorphism class instead of 2^(n(n-1)/2)
   labeled copies: labeled counts come from orbit-stabilizer
   (n!/|Aut| copies per class, summed), and the reported representative
   of each equilibrium class is the minimum-mask labeling — exactly the
   copy the mask sweep sees first. The record is therefore byte-identical
   to [graph_census] wherever both can run, while the class walk reaches
   n = 11 where the mask space is 2^55. *)

let rec factorial n = if n <= 1 then 1 else n * factorial (n - 1)

let orderly_census_in ?atlas game n ~lo ~hi =
  (* orbit-stabilizer counting scales one verdict per class by n!/|Aut|,
     which is sound only when the verdict is isomorphism-invariant. The
     α-game's is not: edge ownership (default: the smaller endpoint) is
     labeling-dependent, so two copies of one class can disagree. *)
  if not (Game.is_basic game) then
    invalid_arg
      (Printf.sprintf
         "Census.orderly_census: game %s is not isomorphism-invariant; use \
          the rank-range census"
         (Game.to_string game));
  let connected = ref 0 in
  let labeled = ref 0 in
  let reps = ref [] in
  let copies_of_class = factorial n in
  let t0 = Telemetry.start () in
  Orderly.iter ~lo ~hi n (fun g cert ->
      let copies = copies_of_class / cert.Canon.aut_count in
      connected := !connected + copies;
      if is_equilibrium_via ?atlas game g then begin
        labeled := !labeled + copies;
        let rep = Orderly.representative g cert in
        reps := (Orderly.mask_of_graph rep, rep) :: !reps
      end);
  Telemetry.stop m_shard t0;
  (* ascending mask order = the order the legacy sweep first sees each
     class; shards cover disjoint class sets, so merges stay sorted *)
  let reps = List.sort (fun (a, _) (b, _) -> compare a b) !reps in
  census_of_graph_shard n
    {
      s_connected = !connected;
      s_labeled = !labeled;
      s_reps = List.map (fun (k, g) -> (string_of_int k, g)) reps;
    }

let merge_orderly_census a b =
  if a.n <> b.n then invalid_arg "Census.merge_orderly_census: different n";
  (* disjoint sorted class lists: a plain merge by mask key keeps the
     whole list in legacy first-seen order whatever the merge order of
     adjacent shards *)
  let key = Orderly.mask_of_graph in
  let rec merge xs ys =
    match (xs, ys) with
    | [], l | l, [] -> l
    | x :: xt, y :: yt ->
      if key x <= key y then x :: merge xt ys else y :: merge xs yt
  in
  let iso = merge a.equilibria_iso b.equilibria_iso in
  census_of_graph_shard a.n
    {
      s_connected = a.connected + b.connected;
      s_labeled = a.equilibria_labeled + b.equilibria_labeled;
      s_reps = List.map (fun g -> ("", g)) iso;
    }

let orderly_census ?atlas ?pool game n =
  let total = Orderly.space n in
  match pool with
  | Some pool when Pool.jobs pool > 1 ->
    Pool.fold_chunks pool ~n:total
      ~fold:(fun ~lo ~hi -> orderly_census_in ?atlas game n ~lo ~hi)
      ~reduce:merge_orderly_census
      ~zero:(orderly_census_in game n ~lo:0 ~hi:0)
  | _ -> orderly_census_in ?atlas game n ~lo:0 ~hi:total

(* --- unified shard API ---------------------------------------------------- *)

type kind = Trees | Graphs | Orderly

type shard = {
  kind : kind;
  game : Game.t;
  n : int;
  lo : int;
  hi : int;
}

type result =
  | Tree_result of tree_census
  | Graph_result of graph_census
  | Orderly_result of graph_census

let kind_name = function
  | Trees -> "trees"
  | Graphs -> "graphs"
  | Orderly -> "orderly"

let kind_of_name = function
  | "trees" -> Some Trees
  | "graphs" -> Some Graphs
  | "orderly" -> Some Orderly
  | _ -> None

let max_shard_vertices = function
  | Trees -> Enumerate.max_tree_vertices
  | Graphs -> Enumerate.max_graph_vertices
  | Orderly -> Orderly.max_vertices

let shard_space kind n =
  match kind with
  | Trees -> Enumerate.count_trees n
  | Graphs -> Enumerate.graph_mask_count n
  | Orderly -> Orderly.space n

let validate_shard s =
  let max_n = max_shard_vertices s.kind in
  if s.kind = Orderly && not (Game.is_basic s.game) then
    Error
      (Printf.sprintf
         "orderly census requires an isomorphism-invariant game (sum or \
          max), got %s"
         (Game.to_string s.game))
  else if s.n < 1 || s.n > max_n then
    Error
      (Printf.sprintf "census n must be in [1, %d] for kind %s, got %d" max_n
         (kind_name s.kind) s.n)
  else begin
    let space = shard_space s.kind s.n in
    if s.lo < 0 || s.hi > space || s.lo > s.hi then
      Error
        (Printf.sprintf "shard range must satisfy 0 <= lo <= hi <= %d" space)
    else Ok ()
  end

let full_shard kind game n =
  if n < 1 || n > max_shard_vertices kind then
    invalid_arg
      (Printf.sprintf "Census.full_shard: n must be in [1, %d] for kind %s"
         (max_shard_vertices kind) (kind_name kind));
  { kind; game; n; lo = 0; hi = shard_space kind n }

let run_shard ?atlas s =
  (match validate_shard s with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Census.run_shard: " ^ msg));
  match s.kind with
  | Trees ->
    (* trees ignore the atlas: the shape classification + closed-form
       witnesses are cheaper than an index probe per tree *)
    let t0 = Telemetry.start () in
    let tally = fresh_tally () in
    Enumerate.trees_in s.n ~lo:s.lo ~hi:s.hi (classify_tree s.game tally);
    Telemetry.stop m_shard t0;
    Tree_result (census_of_tally s.n tally)
  | Graphs ->
    Graph_result
      (census_of_graph_shard s.n
         (graph_shard_of_range ?atlas s.game s.n ~lo:s.lo ~hi:s.hi))
  | Orderly ->
    Orderly_result (orderly_census_in ?atlas s.game s.n ~lo:s.lo ~hi:s.hi)

let split s ~parts =
  if parts < 1 then invalid_arg "Census.split: parts must be >= 1";
  let width = s.hi - s.lo in
  if width = 0 then [ s ]
  else begin
    let k = min parts width in
    List.init k (fun i ->
        { s with lo = s.lo + (i * width / k); hi = s.lo + ((i + 1) * width / k) })
  end

let merge_result a b =
  match (a, b) with
  | Tree_result a, Tree_result b -> Tree_result (merge_tree_census a b)
  | Graph_result a, Graph_result b -> Graph_result (merge_graph_census a b)
  | Orderly_result a, Orderly_result b ->
    Orderly_result (merge_orderly_census a b)
  | _ -> invalid_arg "Census.merge_result: mixed census kinds"

let tree_census_in game n ~lo ~hi =
  match run_shard { kind = Trees; game; n; lo; hi } with
  | Tree_result c -> c
  | Graph_result _ | Orderly_result _ -> assert false

let graph_census_in ?atlas game n ~lo ~hi =
  match run_shard ?atlas { kind = Graphs; game; n; lo; hi } with
  | Graph_result c -> c
  | Tree_result _ | Orderly_result _ -> assert false
