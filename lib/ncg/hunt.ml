let log_src = Logs.Src.create "bncg.hunt" ~doc:"equilibrium search"

module Log = (val Logs.src_log log_src)

let m_steps = Telemetry.counter "hunt.steps"

let m_restarts = Telemetry.counter "hunt.restarts"

let m_candidates = Telemetry.counter "hunt.candidates_scored"

type config = {
  game : Game.t;
  n : int;
  target_diameter : int;
  steps : int;
  restarts : int;
  initial_temperature : float;
}

let default_config ?(game = Game.Sum) ~n ~target_diameter () =
  {
    game;
    n;
    target_diameter;
    steps = 4000;
    restarts = 4;
    initial_temperature = 2.0;
  }

type result = {
  found : Graph.t option;
  best_violations : int;
  evaluated : int;
}

let violating_agents_alpha alpha g =
  let st = Alpha_game.create ~alpha g in
  let count = ref 0 in
  for v = 0 to Graph.n g - 1 do
    if Alpha_game.first_improving_move st v <> None then incr count
  done;
  !count

let violating_agents_basic version g =
  let n = Graph.n g in
  let eng = Swap_eval.create g in
  let count = ref 0 in
  for v = 0 to n - 1 do
    let improving =
      match Swap_eval.first_improving_move eng version v with
      | Some _ -> true
      | None -> (
        match version with
        | Usage_cost.Sum -> false
        | Usage_cost.Max ->
          (* non-critical deletions also break max equilibrium; their
             deltas come off the engine's cached drop rows *)
          let bad = ref false in
          Array.iter
            (fun drop ->
              if not !bad then
                match
                  Swap_eval.delta_below eng Usage_cost.Max
                    (Swap.Delete { actor = v; drop })
                    ~cutoff:1
                with
                | Some _ -> bad := true
                | None -> ())
            (Graph.neighbors g v);
          !bad)
    in
    if improving then incr count
  done;
  !count

let violating_agents game g =
  match Game.basic game with
  | Some version -> violating_agents_basic version g
  | None -> (
    match game with
    | Game.Alpha a -> violating_agents_alpha a g
    | Game.Sum | Game.Max -> assert false)

(* Objective: lexicographic (diameter shortfall, violations), folded into a
   single float so annealing can compare. A huge weight keeps the diameter
   constraint dominant. *)
let score cfg g =
  match Metrics.diameter g with
  | None -> infinity
  | Some d ->
    let shortfall = max 0 (cfg.target_diameter - d) in
    (1000.0 *. float_of_int shortfall)
    +. float_of_int (violating_agents cfg.game g)

(* neighbor move: toggle one vertex pair, rejecting toggles that disconnect
   or drop the graph below the target diameter too badly *)
let propose rng g =
  let n = Graph.n g in
  let h = Graph.copy g in
  let rec attempt tries =
    if tries = 0 then None
    else begin
      let u = Prng.int rng n and v = Prng.int rng n in
      if u = v then attempt (tries - 1)
      else if Graph.mem_edge h u v then begin
        Graph.remove_edge h u v;
        if Components.is_connected h then Some h
        else begin
          Graph.add_edge h u v;
          attempt (tries - 1)
        end
      end
      else begin
        Graph.add_edge h u v;
        Some h
      end
    end
  in
  attempt 32

let run rng cfg =
  if cfg.n < 2 then invalid_arg "Hunt.run: n too small";
  let evaluated = ref 0 in
  let best_violations = ref max_int in
  let found = ref None in
  let verify g = Equilibrium.is_equilibrium cfg.game g in
  let restart = ref 0 in
  while !found = None && !restart < cfg.restarts do
    Telemetry.incr m_restarts;
    (* seed state: a random connected graph with a longish backbone so the
       diameter constraint starts nearly satisfied *)
    let g =
      ref
        (if Prng.bool rng then Random_graphs.tree rng cfg.n
         else Random_graphs.connected_gnm rng cfg.n (cfg.n + Prng.int rng cfg.n))
    in
    let current = ref (score cfg !g) in
    incr evaluated;
    let step = ref 0 in
    while !found = None && !step < cfg.steps do
      incr step;
      let temperature =
        cfg.initial_temperature
        *. (1.0 -. (float_of_int !step /. float_of_int cfg.steps))
        +. 0.01
      in
      (match propose rng !g with
      | None -> ()
      | Some candidate ->
        let s = score cfg candidate in
        incr evaluated;
        let accept =
          s <= !current
          || Prng.float rng 1.0 < exp ((!current -. s) /. temperature)
        in
        if accept then begin
          g := candidate;
          current := s
        end;
        (match Metrics.diameter candidate with
        | Some d when d >= cfg.target_diameter ->
          let violations = int_of_float (Float.min s 1e9) mod 1000 in
          if violations < !best_violations then begin
            best_violations := violations;
            Log.debug (fun m ->
                m "restart %d step %d: best candidate now %d violating agents"
                  !restart !step violations)
          end;
          if s = 0.0 && verify candidate then begin
            Log.info (fun m ->
                m "verified %s equilibrium of diameter >= %d on %d vertices after %d candidates"
                  (Game.to_string cfg.game)
                  cfg.target_diameter cfg.n !evaluated);
            found := Some candidate
          end
        | Some _ | None -> ()))
    done;
    Telemetry.add m_steps !step;
    incr restart
  done;
  Telemetry.add m_candidates !evaluated;
  {
    found = !found;
    best_violations = (if !best_violations = max_int then -1 else !best_violations);
    evaluated = !evaluated;
  }

let hunt_sum_diameter rng ~n ~target_diameter ?(steps = 4000) () =
  run rng { (default_config ~n ~target_diameter ()) with steps }
