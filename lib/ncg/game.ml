type t = Sum | Max | Alpha of float

let equal a b =
  match (a, b) with
  | Sum, Sum | Max, Max -> true
  | Alpha x, Alpha y -> Float.equal x y
  | (Sum | Max | Alpha _), _ -> false

let basic = function
  | Sum -> Some Usage_cost.Sum
  | Max -> Some Usage_cost.Max
  | Alpha _ -> None

let is_basic g = basic g <> None

let of_version = function Usage_cost.Sum -> Sum | Usage_cost.Max -> Max

(* Shortest decimal form that parses back to exactly the same float, so
   the qcheck round-trip [of_string (to_string g) = Ok g] holds and the
   wire/atlas spelling of an alpha is unique per value. *)
let float_to_string x =
  let s = Printf.sprintf "%.15g" x in
  if float_of_string s = x then s else Printf.sprintf "%.17g" x

let to_string = function
  | Sum -> "sum"
  | Max -> "max"
  | Alpha a -> "alpha:" ^ float_to_string a

let grammar = "expected \"sum\", \"max\", or \"alpha:<non-negative float>\""

let of_string s =
  match s with
  | "sum" -> Ok Sum
  | "max" -> Ok Max
  | _ -> (
    match String.index_opt s ':' with
    | Some i when String.sub s 0 i = "alpha" -> (
      let payload = String.sub s (i + 1) (String.length s - i - 1) in
      match float_of_string_opt payload with
      | Some a when Float.is_finite a && a >= 0.0 -> Ok (Alpha a)
      | Some _ -> Error (Printf.sprintf "bad alpha %S: %s" payload grammar)
      | None -> Error (Printf.sprintf "unparseable alpha %S: %s" payload grammar))
    | _ -> Error (Printf.sprintf "unknown game %S: %s" s grammar))

let pp ppf g = Format.pp_print_string ppf (to_string g)

let move_set = function
  | Sum -> "swap"
  | Max -> "swap+delete"
  | Alpha _ -> "buy/sell/swap-owned"

let social_cost game g =
  match game with
  | Sum | Max ->
    let v = match game with Sum -> Usage_cost.Sum | _ -> Usage_cost.Max in
    let c = Usage_cost.social_cost v g in
    if Usage_cost.is_infinite c then infinity else float_of_int c
  | Alpha a ->
    let dist = Usage_cost.social_cost Usage_cost.Sum g in
    if Usage_cost.is_infinite dist then infinity
    else (a *. float_of_int (Graph.m g)) +. float_of_int dist
