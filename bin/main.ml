(* bncg — command-line interface to the basic network creation game library.

   Subcommands: generate, info, check, dynamics, census, experiment. Graphs
   cross the CLI boundary as graph6 strings so results can be piped between
   invocations and into external tools. *)

open Cmdliner

(* --- shared helpers ---------------------------------------------------- *)

let opt_cell = function Some d -> string_of_int d | None -> "inf"

let graph_summary g =
  Printf.printf "n = %d, m = %d\n" (Graph.n g) (Graph.m g);
  Printf.printf "connected: %b\n" (Components.is_connected g);
  Printf.printf "diameter: %s\n" (opt_cell (Metrics.diameter g));
  Printf.printf "radius: %s\n" (opt_cell (Metrics.radius g));
  Printf.printf "girth: %s\n"
    (match Metrics.girth g with Some x -> string_of_int x | None -> "- (forest)");
  Printf.printf "degrees: min %d, max %d\n" (Graph.min_degree g) (Graph.max_degree g);
  (match Metrics.wiener_index g with
  | Some w -> Printf.printf "wiener index: %d (social sum cost %d)\n" w (2 * w)
  | None -> ());
  Printf.printf "graph6: %s\n" (Graph6.encode g)

(* One parser for every --game flag: the same [Game.of_string] the RPC
   wire protocol and the atlas key namespaces go through. *)
let game_conv =
  let parse s = Result.map_error (fun msg -> `Msg msg) (Game.of_string s) in
  Arg.conv (parse, Game.pp)

let game_doc = "Game: sum, max, or alpha:$(i,A) (e.g. alpha:1.5)."

let graph6_arg =
  let doc = "The graph, as a graph6 string (as printed by $(b,bncg generate))." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"GRAPH6" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the parallel kernels (census sharding, per-agent \
     equilibrium scans). 0 means all available cores; 1 forces the \
     sequential code path."
  in
  Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

(* 0 = hardware default; every subcommand builds its pool through here so
   the domains are joined on the way out *)
let with_jobs jobs f =
  if jobs < 0 then `Error (false, "--jobs must be >= 0")
  else begin
    let jobs = if jobs = 0 then Pool.available_jobs () else jobs in
    Pool.with_pool ~jobs f
  end

let decode_graph = Graph6.decode_result

(* "unix:PATH" or "tcp:HOST:PORT"; the shared address syntax of
   bncg serve --listen, bncg call --addr and bncg census --workers *)
let parse_address s =
  match String.index_opt s ':' with
  | Some i when String.sub s 0 i = "unix" && String.length s > i + 1 ->
    Ok (Serve.Unix_sock (String.sub s (i + 1) (String.length s - i - 1)))
  | Some i when String.sub s 0 i = "tcp" -> (
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    match String.rindex_opt rest ':' with
    | Some j -> (
      let host = String.sub rest 0 j in
      let host = if host = "" then "127.0.0.1" else host in
      match int_of_string_opt (String.sub rest (j + 1) (String.length rest - j - 1)) with
      | Some port when port >= 0 && port < 65536 -> Ok (Serve.Tcp (host, port))
      | _ -> Error (`Msg (Printf.sprintf "bad port in %S" s)))
    | None -> Error (`Msg (Printf.sprintf "expected tcp:HOST:PORT, got %S" s)))
  | _ ->
    Error (`Msg (Printf.sprintf "expected unix:PATH or tcp:HOST:PORT, got %S" s))

(* --- telemetry plumbing ------------------------------------------------- *)

let stats_arg =
  let doc =
    "Enable the telemetry layer and print a sorted metric table (counters, \
     gauges, span timers) after the run."
  in
  Arg.(value & flag & info [ "stats" ] ~doc)

let stats_json_arg =
  let doc =
    "Enable the telemetry layer and write the metrics to $(docv) as a JSON \
     array of {name, kind, value} rows (same row discipline as bench --json)."
  in
  Arg.(value & opt (some string) None & info [ "stats-json" ] ~docv:"FILE" ~doc)

(* fail before the (long) run, not after it — the bench --json pattern *)
let stats_json_writable path =
  match open_out path with
  | oc ->
    close_out oc;
    Ok ()
  | exception Sys_error msg ->
    Error (Printf.sprintf "cannot write --stats-json target: %s" msg)

let with_stats stats stats_json f =
  if not (stats || stats_json <> None) then f ()
  else begin
    let writable =
      match stats_json with Some p -> stats_json_writable p | None -> Ok ()
    in
    match writable with
    | Error msg -> `Error (false, msg)
    | Ok () ->
      Telemetry.reset ();
      Telemetry.set_enabled true;
      let r = f () in
      if stats then Telemetry.print_report ();
      Option.iter Telemetry.write_json stats_json;
      r
  end

(* --- generate ----------------------------------------------------------- *)

let generate_families =
  [
    ("star", `Star);
    ("double-star", `Double_star);
    ("path", `Path);
    ("cycle", `Cycle);
    ("complete", `Complete);
    ("hypercube", `Hypercube);
    ("petersen", `Petersen);
    ("torus", `Torus);
    ("torus-d", `Torus_d);
    ("theorem5", `Theorem5);
    ("witness", `Witness);
    ("polarity", `Polarity);
    ("tree", `Tree);
    ("gnm", `Gnm);
  ]

let generate family n k dim seed edges_out =
  let rng = Prng.create seed in
  let need_n what = match n with
    | Some n -> n
    | None -> invalid_arg (Printf.sprintf "--n is required for %s" what)
  in
  let g =
    match family with
    | `Star -> Generators.star (need_n "star")
    | `Double_star -> Generators.double_star (need_n "double-star") k
    | `Path -> Generators.path (need_n "path")
    | `Cycle -> Generators.cycle (need_n "cycle")
    | `Complete -> Generators.complete (need_n "complete")
    | `Hypercube -> Generators.hypercube (need_n "hypercube")
    | `Petersen -> Generators.petersen ()
    | `Torus -> Constructions.torus k
    | `Torus_d -> Constructions.torus_d ~dim k
    | `Theorem5 -> Constructions.theorem5_graph
    | `Witness -> Constructions.sum_diameter3_witness
    | `Polarity -> Polarity.polarity_graph k
    | `Tree -> Random_graphs.tree rng (need_n "tree")
    | `Gnm ->
      let n = need_n "gnm" in
      Random_graphs.connected_gnm rng n (max (n - 1) (2 * n))
  in
  (match edges_out with
  | `Graph6 -> print_endline (Graph6.encode g)
  | `Edges -> print_string (Graph_io.to_edge_list g)
  | `Dot -> print_string (Graph_io.to_dot g));
  `Ok ()

let generate_cmd =
  let family =
    let doc =
      "Graph family: " ^ String.concat ", " (List.map fst generate_families) ^ "."
    in
    Arg.(
      required
      & pos 0 (some (enum generate_families)) None
      & info [] ~docv:"FAMILY" ~doc)
  in
  let n = Arg.(value & opt (some int) None & info [ "n" ] ~doc:"Vertex count.") in
  let k =
    Arg.(value & opt int 3 & info [ "k" ] ~doc:"Family parameter (torus k, polarity q, double-star second arm, ...).")
  in
  let dim = Arg.(value & opt int 2 & info [ "dim" ] ~doc:"Torus dimension.") in
  let seed = Arg.(value & opt int 0 & info [ "seed" ] ~doc:"PRNG seed.") in
  let edges =
    Arg.(
      value
      & opt (enum [ ("graph6", `Graph6); ("edges", `Edges); ("dot", `Dot) ]) `Graph6
      & info [ "format" ] ~doc:"Output format: graph6 (default), edges, or dot.")
  in
  let run family n k dim seed edges =
    try generate family n k dim seed edges
    with Invalid_argument msg -> `Error (false, msg)
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a graph from a named family")
    Term.(ret (const run $ family $ n $ k $ dim $ seed $ edges))

(* --- info ---------------------------------------------------------------- *)

let info_cmd =
  let run g6 =
    match decode_graph g6 with
    | Error msg -> `Error (false, msg)
    | Ok g ->
      graph_summary g;
      `Ok ()
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Print structural metrics of a graph")
    Term.(ret (const run $ graph6_arg))

(* --- check ---------------------------------------------------------------- *)

let check game jobs stats stats_json g6 =
  match decode_graph g6 with
  | Error msg -> `Error (false, msg)
  | Ok g ->
    with_stats stats stats_json @@ fun () ->
    with_jobs jobs @@ fun pool ->
    let verdict = Equilibrium.check ~pool game g in
    Printf.printf "version: %s\n" (Game.to_string game);
    Printf.printf "verdict: %s\n" (Format.asprintf "%a" Equilibrium.pp_verdict verdict);
    Printf.printf "diameter: %s\n" (opt_cell (Metrics.diameter g));
    (match game with
    | Game.Max ->
      Printf.printf "deletion-critical: %b\n" (Equilibrium.is_deletion_critical g);
      Printf.printf "insertion-stable: %b\n" (Equilibrium.is_insertion_stable g);
      (match Equilibrium.eccentricity_spread g with
      | Some s -> Printf.printf "eccentricity spread: %d\n" s
      | None -> ())
    | Game.Sum | Game.Alpha _ -> ());
    `Ok ()

let check_cmd =
  let game = Arg.(value & opt game_conv Game.Sum & info [ "game" ] ~doc:game_doc) in
  Cmd.v
    (Cmd.info "check" ~doc:"Check whether a graph is an equilibrium of the chosen game")
    Term.(ret (const check $ game $ jobs_arg $ stats_arg $ stats_json_arg $ graph6_arg))

(* --- dynamics --------------------------------------------------------------- *)

let dynamics_exact game n init seed max_rounds trace =
  let rng = Prng.create seed in
  let g =
    match init with
    | `Tree -> Random_graphs.tree rng n
    | `Gnm -> Random_graphs.connected_gnm rng n (2 * n)
    | `Path -> Generators.path n
    | `Cycle -> Generators.cycle n
  in
  let cfg =
    { (Dynamics.default_config game) with Dynamics.max_rounds; record_trace = trace }
  in
  let r = Dynamics.run ~rng cfg g in
  Printf.printf "outcome: %s\n" (Exp_common.outcome_name r.Dynamics.outcome);
  Printf.printf "rounds: %d, moves: %d\n" r.Dynamics.rounds r.Dynamics.moves;
  Printf.printf "final m: %d, diameter: %s\n" (Graph.m r.Dynamics.final)
    (opt_cell (Metrics.diameter r.Dynamics.final));
  let verified = Equilibrium.is_equilibrium game r.Dynamics.final in
  Printf.printf "equilibrium verified: %b\n" verified;
  Printf.printf "final graph6: %s\n" (Graph6.encode r.Dynamics.final);
  if trace then begin
    Printf.printf "\n%-6s %-24s %8s %10s %9s\n" "step" "move" "delta" "social" "diameter";
    List.iter
      (fun s ->
        Printf.printf "%-6d %-24s %8d %10d %9d\n" s.Dynamics.index
          (Swap.move_to_string s.Dynamics.move)
          s.Dynamics.delta s.Dynamics.social s.Dynamics.diameter)
      r.Dynamics.trace
  end;
  `Ok ()

(* The large-n engine: generate a family snapshot straight into CSR, run
   the sampled best-response dynamics over the Flexcsr arena. All
   randomness (generator rows, run stream, trajectory sources) derives
   from --seed through Prng.substream, so runs are reproducible at any -j. *)
let dynamics_scale game n gen seed max_rounds jobs budget probes patience
    exact_confirm window ba_m er_deg ws_k ws_beta traj_every traj_sources trace =
  with_jobs jobs @@ fun pool ->
  let t0 = Unix.gettimeofday () in
  let csr =
    match gen with
    | `Ba -> Scale_gen.ba ~seed ~n ~m:ba_m
    | `Er -> Scale_gen.er ~pool ~seed ~n ~avg_deg:er_deg ()
    | `Ws -> Scale_gen.ws ~pool ~seed ~n ~k:ws_k ~beta:ws_beta ()
  in
  let t_gen = Unix.gettimeofday () -. t0 in
  Printf.printf "generator: %s, n = %d, m = %d (%.2fs)\n"
    (match gen with `Ba -> "ba" | `Er -> "er" | `Ws -> "ws")
    (Csr.n csr) (Csr.m csr) t_gen;
  let cfg =
    {
      (Scale_dynamics.default_config game) with
      Scale_dynamics.budget;
      probes_per_round = probes;
      max_rounds;
      confirm =
        (if exact_confirm then Scale_dynamics.Exact_scan
         else Scale_dynamics.Quiescence patience);
      window;
      trajectory_every = traj_every;
      trajectory_sources = traj_sources;
      traj_seed = seed;
      record_trace = trace;
    }
  in
  let rng = Prng.substream seed (-1) in
  let t1 = Unix.gettimeofday () in
  let r = Scale_dynamics.run ~pool ~rng cfg csr in
  let t_run = Unix.gettimeofday () -. t1 in
  Printf.printf "outcome: %s%s\n"
    (Exp_common.outcome_name r.Scale_dynamics.outcome)
    (if r.Scale_dynamics.sampled_verdict then " (sampled verdict)" else "");
  Printf.printf "rounds: %d, probes: %d, moves: %d (deletions %d)\n"
    r.Scale_dynamics.rounds r.Scale_dynamics.probes r.Scale_dynamics.moves
    r.Scale_dynamics.deletions;
  Printf.printf "final m: %d\n" r.Scale_dynamics.final_m;
  Printf.printf "wall: %.2fs (%.1f ms/round)\n" t_run
    (1000. *. t_run /. float_of_int (max 1 r.Scale_dynamics.rounds));
  if r.Scale_dynamics.trajectory <> [] then begin
    Printf.printf "\n%-8s %-8s %-11s %s\n" "round" "moves" "diameter>=" "mean-dist";
    List.iter
      (fun (s : Scale_dynamics.sample) ->
        Printf.printf "%-8d %-8d %-11d %.3f\n" s.Scale_dynamics.s_round
          s.Scale_dynamics.s_moves s.Scale_dynamics.s_diameter_lb
          s.Scale_dynamics.s_mean_dist)
      r.Scale_dynamics.trajectory
  end;
  if trace then begin
    Printf.printf "\n%-6s %-24s %8s\n" "step" "move" "delta";
    List.iteri
      (fun i (mv, d) ->
        Printf.printf "%-6d %-24s %8d\n" i (Swap.move_to_string mv) d)
      r.Scale_dynamics.trace
  end;
  `Ok ()

let dynamics engine game n init gen seed max_rounds jobs budget probes
    patience exact_confirm window ba_m er_deg ws_k ws_beta traj_every
    traj_sources trace stats stats_json =
  with_stats stats stats_json @@ fun () ->
  match engine with
  | `Exact ->
    let max_rounds = if max_rounds = 0 then 10_000 else max_rounds in
    dynamics_exact game n init seed max_rounds trace
  | `Scale when not (Game.is_basic game) ->
    `Error
      ( false,
        Printf.sprintf
          "--engine scale supports only the basic games (sum, max); got %s \
           (use --engine exact)"
          (Game.to_string game) )
  | `Scale ->
    (* one round = --probes sampled probes; at n = 10^6 a round of 32
       probes is ~2 minutes on one core, so the default keeps the bare
       command under an hour *)
    let max_rounds = if max_rounds = 0 then 24 else max_rounds in
    dynamics_scale game n gen seed max_rounds jobs budget probes patience
      exact_confirm window ba_m er_deg ws_k ws_beta traj_every traj_sources
      trace

let dynamics_cmd =
  let game = Arg.(value & opt game_conv Game.Sum & info [ "game" ] ~doc:game_doc) in
  let engine =
    Arg.(
      value
      & opt (enum [ ("exact", `Exact); ("scale", `Scale) ]) `Exact
      & info [ "engine" ]
          ~doc:
            "exact: full candidate scans over Graph.t (small n). scale: \
             sampled probes over a CSR arena with certified candidate \
             bounds (n up to 10^6).")
  in
  let n = Arg.(value & opt int 24 & info [ "n" ] ~doc:"Number of agents.") in
  let init =
    Arg.(
      value
      & opt (enum [ ("tree", `Tree); ("gnm", `Gnm); ("path", `Path); ("cycle", `Cycle) ]) `Tree
      & info [ "init" ] ~doc:"Initial network for --engine exact: tree, gnm, path, cycle.")
  in
  let gen =
    Arg.(
      value
      & opt (enum [ ("ba", `Ba); ("er", `Er); ("ws", `Ws) ]) `Ba
      & info [ "gen" ]
          ~doc:
            "Initial network for --engine scale: ba (preferential \
             attachment), er (Erdos-Renyi), ws (Watts-Strogatz).")
  in
  let seed = Arg.(value & opt int 0 & info [ "seed" ] ~doc:"PRNG seed.") in
  let rounds =
    Arg.(
      value & opt int 0
      & info [ "max-rounds" ]
          ~doc:"Round cap; 0 means the engine default (exact 10000, scale 24).")
  in
  let budget =
    Arg.(
      value & opt int 16
      & info [ "budget" ] ~doc:"Scale engine: sampled candidate swaps per probe.")
  in
  let probes =
    Arg.(
      value & opt int 32
      & info [ "probes" ] ~doc:"Scale engine: probes per round (0 means n).")
  in
  let patience =
    Arg.(
      value & opt int 512
      & info [ "patience" ]
          ~doc:
            "Scale engine: consecutive unimproving probes before declaring \
             (sampled) convergence.")
  in
  let exact_confirm =
    Arg.(
      value & flag
      & info [ "exact-confirm" ]
          ~doc:
            "Scale engine: confirm quiet rounds with the full exact scan \
             instead of quiescence patience (equilibrium certificate; only \
             affordable at small n).")
  in
  let window =
    Arg.(
      value
      & opt int (1 lsl 20)
      & info [ "window" ] ~doc:"Scale engine: recent states kept for cycle detection.")
  in
  let ba_m =
    Arg.(value & opt int 2 & info [ "ba-m" ] ~doc:"ba generator: edges per arriving vertex.")
  in
  let er_deg =
    Arg.(value & opt float 4.0 & info [ "er-deg" ] ~doc:"er generator: expected average degree.")
  in
  let ws_k =
    Arg.(value & opt int 2 & info [ "ws-k" ] ~doc:"ws generator: clockwise lattice links per vertex.")
  in
  let ws_beta =
    Arg.(value & opt float 0.1 & info [ "ws-beta" ] ~doc:"ws generator: rewiring probability.")
  in
  let traj_every =
    Arg.(
      value & opt int 8
      & info [ "traj-every" ]
          ~doc:"Scale engine: sample the diameter trajectory every this many rounds (0: start/end only).")
  in
  let traj_sources =
    Arg.(
      value & opt int 32
      & info [ "traj-sources" ] ~doc:"Scale engine: BFS sources per trajectory sample (0 disables).")
  in
  let trace = Arg.(value & flag & info [ "trace" ] ~doc:"Print the move-by-move trace.") in
  Cmd.v
    (Cmd.info "dynamics" ~doc:"Run best-response swap dynamics to equilibrium")
    Term.(
      ret
        (const dynamics $ engine $ game $ n $ init $ gen $ seed $ rounds
       $ jobs_arg $ budget $ probes $ patience $ exact_confirm $ window $ ba_m
       $ er_deg $ ws_k $ ws_beta $ traj_every $ traj_sources $ trace
       $ stats_arg $ stats_json_arg))

(* --- census --------------------------------------------------------------- *)

(* shared by the in-process and the distributed paths, so the
   distributed run's stdout is byte-identical to the sequential one
   (CI diffs them; dispatch accounting goes to stderr) *)
let print_tree_census (c : Census.tree_census) =
  Printf.printf "labeled trees: %d\n" c.Census.total;
  Printf.printf "equilibria: %d (stars %d, double stars %d)\n" c.Census.equilibria
    c.Census.stars c.Census.double_stars;
  Printf.printf "max equilibrium diameter: %d\n" c.Census.max_eq_diameter

let print_graph_census (c : Census.graph_census) =
  Printf.printf "connected graphs: %d\n" c.Census.connected;
  Printf.printf "equilibria: %d labeled, %d up to isomorphism\n"
    c.Census.equilibria_labeled
    (List.length c.Census.equilibria_iso);
  Printf.printf "diameter histogram: %s\n"
    (String.concat ", "
       (List.map
          (fun (d, k) -> Printf.sprintf "%d -> %d" d k)
          c.Census.diameter_histogram));
  List.iter
    (fun g -> Printf.printf "  representative: %s\n" (Graph6.encode g))
    c.Census.equilibria_iso

let census game n trees strategy jobs workers parts retries timeout journal
    atlas_dir stats stats_json =
  with_stats stats stats_json @@ fun () ->
  if trees && strategy = `Orderly then
    invalid_arg "--strategy orderly applies to the graph census, not --trees";
  if strategy = `Orderly && (not trees) && not (Game.is_basic game) then
    invalid_arg
      (Printf.sprintf
         "--strategy orderly requires an isomorphism-invariant game (sum or \
          max); %s verdicts depend on the labeling through edge ownership"
         (Game.to_string game));
  let atlas =
    match atlas_dir with
    | None -> None
    | Some dir -> (
      match Atlas.open_ dir with
      | Ok a -> Some a
      | Error msg -> invalid_arg ("atlas: " ^ msg))
  in
  (* atlas accounting goes to stderr, like the dispatch accounting: the
     census on stdout stays byte-identical with and without the atlas *)
  let finish () =
    Option.iter
      (fun a ->
        let s = Atlas.stats a in
        Printf.eprintf "atlas: %d hits, %d misses, %d appended, %d duplicates\n"
          s.Atlas.hits s.Atlas.misses s.Atlas.appended s.Atlas.duplicates;
        Atlas.close a)
      atlas
  in
  Fun.protect ~finally:finish @@ fun () ->
  if workers = [] then
    with_jobs jobs @@ fun pool ->
    if trees then begin
      print_tree_census (Census.tree_census ~pool game n);
      `Ok ()
    end
    else begin
      (* both strategies print through the same function: the orderly
         census record is byte-identical to the rank-range one wherever
         both can run (CI diffs them) *)
      print_graph_census
        (match strategy with
        | `Orderly -> Census.orderly_census ?atlas ~pool game n
        | `Rank -> Census.graph_census ?atlas ~pool game n);
      `Ok ()
    end
  else begin
    let kind =
      if trees then Census.Trees
      else match strategy with `Orderly -> Census.Orderly | `Rank -> Census.Graphs
    in
    let workers =
      List.mapi
        (fun i -> function
          | `Local -> Dispatch.Local (Printf.sprintf "local-%d" i)
          | `Remote addr -> Dispatch.Remote addr)
        workers
    in
    let cfg =
      {
        Dispatch.default_config with
        Dispatch.workers;
        parts;
        max_attempts = retries;
        timeout;
        journal;
        atlas;
      }
    in
    match Dispatch.run cfg (Census.full_shard kind game n) with
    | Error msg -> `Error (false, msg)
    | Ok (result, st) ->
      (match result with
      | Census.Tree_result c -> print_tree_census c
      | Census.Graph_result c | Census.Orderly_result c -> print_graph_census c);
      Printf.eprintf
        "dispatch: %d shards, %d journal hits, %d dispatched, %d retried, %d recovered\n"
        st.Dispatch.shards st.Dispatch.journal_hits st.Dispatch.dispatched
        st.Dispatch.retried st.Dispatch.recovered;
      if st.Dispatch.blacklisted <> [] then
        Printf.eprintf "dispatch: blacklisted workers: %s\n"
          (String.concat ", " st.Dispatch.blacklisted);
      `Ok ()
  end

let worker_conv =
  let parse s =
    if String.equal s "local" then Ok `Local
    else
      match parse_address s with
      | Ok addr -> Ok (`Remote addr)
      | Error (`Msg _) ->
        Error
          (`Msg
             (Printf.sprintf
                "expected local, unix:PATH or tcp:HOST:PORT, got %S" s))
  in
  let pp ppf = function
    | `Local -> Format.pp_print_string ppf "local"
    | `Remote addr -> Serve.pp_address ppf addr
  in
  Arg.conv (parse, pp)

let census_cmd =
  let game = Arg.(value & opt game_conv Game.Sum & info [ "game" ] ~doc:game_doc) in
  let n = Arg.(value & opt int 5 & info [ "n" ] ~doc:"Vertex count (graphs <= 8, trees <= 10).") in
  let trees = Arg.(value & flag & info [ "trees" ] ~doc:"Census over trees instead of all connected graphs.") in
  let strategy =
    let doc =
      "How the graph census enumerates isomorphism classes: $(b,rank) \
       walks the rank-range space of labeled graphs and dedups by \
       canonical form; $(b,orderly) generates one representative per \
       class by canonical construction path (no dedup, reaches higher \
       $(b,-n)). Output is byte-identical between the two."
    in
    Arg.(
      value
      & opt (enum [ ("rank", `Rank); ("orderly", `Orderly) ]) `Rank
      & info [ "strategy" ] ~docv:"STRATEGY" ~doc)
  in
  let workers =
    let doc =
      "Distribute the census across this worker fleet instead of running \
       in-process: a comma-separated list of $(b,local) (an in-process \
       worker running shards on its own domain), $(b,unix:PATH) or \
       $(b,tcp:HOST:PORT) (a $(b,bncg serve) endpoint). Failed or \
       straggling workers are retried, backed off and blacklisted; the \
       merged census is identical to the in-process one."
    in
    Arg.(value & opt (list worker_conv) [] & info [ "workers" ] ~docv:"W,W,..." ~doc)
  in
  let parts =
    let doc =
      "Number of shards to split the census into (0 means 4 per worker)."
    in
    Arg.(value & opt int 0 & info [ "parts" ] ~docv:"N" ~doc)
  in
  let retries =
    let doc = "Give up after a shard fails this many times across workers." in
    Arg.(
      value
      & opt int Dispatch.default_config.Dispatch.max_attempts
      & info [ "retries" ] ~docv:"N" ~doc)
  in
  let timeout =
    let doc = "Per-shard reply deadline for remote workers, in seconds." in
    Arg.(
      value
      & opt float Dispatch.default_config.Dispatch.timeout
      & info [ "timeout" ] ~docv:"SECS" ~doc)
  in
  let journal =
    let doc =
      "Append each completed shard to $(docv); a rerun with the same \
       arguments and journal resumes, recomputing only missing shards."
    in
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)
  in
  let atlas =
    let doc =
      "Consult and populate the persistent equilibrium atlas in $(docv) \
       (created if missing): verdicts already in the atlas are reused \
       instead of recomputed, and new verdicts are appended for future \
       runs. The census on stdout is byte-identical with or without the \
       atlas; session accounting (hits/misses/appends) goes to stderr."
    in
    Arg.(value & opt (some string) None & info [ "atlas" ] ~docv:"DIR" ~doc)
  in
  let run game n trees strategy jobs workers parts retries timeout journal
      atlas stats stats_json =
    try
      census game n trees strategy jobs workers parts retries timeout journal
        atlas stats stats_json
    with Invalid_argument msg -> `Error (false, msg)
  in
  Cmd.v
    (Cmd.info "census" ~doc:"Exhaustively classify equilibria on small vertex counts")
    Term.(
      ret
        (const run $ game $ n $ trees $ strategy $ jobs_arg $ workers $ parts
        $ retries $ timeout $ journal $ atlas $ stats_arg $ stats_json_arg))

(* --- experiment -------------------------------------------------------------- *)

let experiment id list_only seed =
  Option.iter Exp_common.set_seed_base seed;
  if list_only then begin
    List.iter
      (fun e ->
        Printf.printf "%-4s %-30s %s%s\n" e.Experiments.id e.Experiments.paper_item
          e.Experiments.title
          (if e.Experiments.heavy then " [heavy]" else ""))
      Experiments.all;
    `Ok ()
  end
  else
    match id with
    | None ->
      Experiments.run_default ();
      `Ok ()
    | Some "all" ->
      Experiments.run_default ();
      `Ok ()
    | Some "everything" ->
      Experiments.run_everything ();
      `Ok ()
    | Some id -> (
      match Experiments.find id with
      | Some e ->
        (* run_one honors BNCG_STATS like the bulk runners *)
        Experiments.run_one e;
        `Ok ()
      | None -> `Error (false, Printf.sprintf "unknown experiment %S (try --list)" id))

let experiment_cmd =
  let id =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"ID" ~doc:"Experiment id (E1..E14), 'all', or 'everything'.")
  in
  let list_only = Arg.(value & flag & info [ "list" ] ~doc:"List available experiments.") in
  let seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ]
          ~doc:
            "Seed base: experiment tables draw seeds base+1..base+k \
             (default $(b,BNCG_SEED) or 0).")
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Reproduce the paper's theorem/figure tables")
    Term.(ret (const experiment $ id $ list_only $ seed))

(* --- hunt ---------------------------------------------------------------- *)

let hunt n target_diameter steps seed game stats stats_json =
  with_stats stats stats_json @@ fun () ->
  let rng = Prng.create seed in
  let cfg = { (Hunt.default_config ~game ~n ~target_diameter ()) with Hunt.steps } in
  let r = Hunt.run rng cfg in
  (match r.Hunt.found with
  | Some g ->
    Printf.printf "found a %s equilibrium with diameter >= %d on %d vertices:\n"
      (Game.to_string game) target_diameter n;
    Printf.printf "graph6: %s\n" (Graph6.encode g);
    graph_summary g
  | None ->
    Printf.printf
      "not found (best candidate at target diameter had %d violating agents; %d candidates scored)\n"
      r.Hunt.best_violations r.Hunt.evaluated);
  `Ok ()

let hunt_cmd =
  let n = Arg.(value & opt int 10 & info [ "n" ] ~doc:"Vertex count.") in
  let target = Arg.(value & opt int 3 & info [ "diameter" ] ~doc:"Required minimum diameter.") in
  let steps = Arg.(value & opt int 4000 & info [ "steps" ] ~doc:"Annealing steps per restart.") in
  let seed = Arg.(value & opt int 0 & info [ "seed" ] ~doc:"PRNG seed.") in
  let game = Arg.(value & opt game_conv Game.Sum & info [ "game" ] ~doc:game_doc) in
  Cmd.v
    (Cmd.info "hunt" ~doc:"Search for high-diameter equilibria by simulated annealing")
    Term.(
      ret (const hunt $ n $ target $ steps $ seed $ game $ stats_arg $ stats_json_arg))

(* --- audit ---------------------------------------------------------------- *)

let audit g6 =
  match decode_graph g6 with
  | Error msg -> `Error (false, msg)
  | Ok g ->
    let show name = function
      | None -> Printf.printf "%-8s holds\n" name
      | Some v -> Printf.printf "%-8s VIOLATED: %s\n" name v.Lemmas.description
    in
    Printf.printf "lemma audit on n=%d, m=%d:\n" (Graph.n g) (Graph.m g);
    show "lemma 6" (Lemmas.check_lemma6 g);
    show "lemma 7" (Lemmas.check_lemma7 g);
    show "lemma 8" (Lemmas.check_lemma8 g);
    Printf.printf "\ncentrality profile:\n";
    let b = Centrality.betweenness g in
    Printf.printf "  betweenness: max %.2f at vertex %d, spread %.2f\n"
      b.(Centrality.most_central b)
      (Centrality.most_central b) (Centrality.spread b);
    Printf.printf "  fiedler value: %.4f\n" (Spectral.algebraic_connectivity g);
    Printf.printf "  clustering: global %.3f, average %.3f\n"
      (Metrics.global_clustering g) (Metrics.average_clustering g);
    (match Metrics.degree_assortativity g with
    | Some r -> Printf.printf "  degree assortativity: %.3f\n" r
    | None -> Printf.printf "  degree assortativity: degenerate\n");
    `Ok ()

let audit_cmd =
  Cmd.v
    (Cmd.info "audit" ~doc:"Run the lemma audit and structural profile on a graph")
    Term.(ret (const audit $ graph6_arg))

(* --- serve / call --------------------------------------------------------- *)

let address_conv = Arg.conv (parse_address, Serve.pp_address)

let serve listen jobs workers cache shards max_bytes max_vertices slice timeout
    atlas stats stats_json =
  if listen = [] then
    `Error (false, "at least one --listen address is required")
  else
    with_stats stats stats_json @@ fun () ->
    let cfg =
      {
        Serve.addresses = listen;
        jobs;
        workers;
        cache_capacity = cache;
        cache_shards = shards;
        max_request_bytes = max_bytes;
        max_graph_vertices = max_vertices;
        census_slice = slice;
        request_timeout = timeout;
        write_high_water = Serve.default_config.Serve.write_high_water;
        atlas_dir = atlas;
      }
    in
    match
      Serve.run cfg ~on_ready:(fun srv ->
          List.iter
            (fun a -> Printf.printf "listening on %s\n" (Format.asprintf "%a" Serve.pp_address a))
            (Serve.bound_addresses srv);
          print_string "ready\n";
          flush stdout)
    with
    | () -> `Ok ()
    | exception Invalid_argument msg -> `Error (false, msg)
    | exception Unix.Unix_error (e, fn, arg) ->
      `Error (false, Printf.sprintf "%s(%s): %s" fn arg (Unix.error_message e))

let serve_cmd =
  let listen =
    let doc =
      "Address to listen on: $(b,unix:PATH) or $(b,tcp:HOST:PORT) (port 0 \
       picks an ephemeral port, printed on startup). Repeatable."
    in
    Arg.(value & opt_all address_conv [] & info [ "l"; "listen" ] ~docv:"ADDR" ~doc)
  in
  let workers =
    Arg.(
      value
      & opt int Serve.default_config.Serve.workers
      & info [ "workers" ] ~docv:"N"
          ~doc:"Event-loop worker domains (0 = all available cores).")
  in
  let cache =
    Arg.(
      value
      & opt int Serve.default_config.Serve.cache_capacity
      & info [ "cache" ] ~docv:"N" ~doc:"Result-cache capacity (entries).")
  in
  let shards =
    Arg.(
      value
      & opt int Serve.default_config.Serve.cache_shards
      & info [ "cache-shards" ] ~docv:"N"
          ~doc:"Result-cache shard count (0 = default).")
  in
  let max_bytes =
    Arg.(
      value
      & opt int Serve.default_config.Serve.max_request_bytes
      & info [ "max-request-bytes" ] ~docv:"N" ~doc:"Reject request lines longer than $(docv).")
  in
  let max_vertices =
    Arg.(
      value
      & opt int Serve.default_config.Serve.max_graph_vertices
      & info [ "max-vertices" ] ~docv:"N" ~doc:"Reject info/check graphs with more than $(docv) vertices.")
  in
  let slice =
    Arg.(
      value
      & opt int Serve.default_config.Serve.census_slice
      & info [ "census-slice" ] ~docv:"N" ~doc:"Census ranks per request-deadline check.")
  in
  let timeout =
    Arg.(
      value
      & opt float Serve.default_config.Serve.request_timeout
      & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Per-request cooperative deadline.")
  in
  let atlas =
    let doc =
      "Persistent equilibrium atlas directory (created if missing): a \
       crash-safe warm-start tier under the in-memory cache. Cache \
       misses probe it before computing; computed verdicts are appended \
       to it, so they survive restarts. Responses are byte-identical \
       with or without it."
    in
    Arg.(value & opt (some string) None & info [ "atlas" ] ~docv:"DIR" ~doc)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the batching RPC server (newline-delimited JSON over unix/tcp sockets)")
    Term.(
      ret
        (const serve $ listen $ jobs_arg $ workers $ cache $ shards $ max_bytes
       $ max_vertices $ slice $ timeout $ atlas $ stats_arg $ stats_json_arg))

let call addr timeout meth game g6 kind n lo hi raw =
  let request =
    match raw with
    | Some line -> Ok line
    | None -> (
      match meth with
      | None -> Error "METHOD is required (or use --raw)"
      | Some meth ->
        let params =
          List.filter_map
            (fun x -> x)
            [
              Option.map (fun v -> ("game", Jsonx.Str (Game.to_string v))) game;
              Option.map (fun s -> ("graph6", Jsonx.Str s)) g6;
              Option.map (fun s -> ("kind", Jsonx.Str s)) kind;
              Option.map (fun i -> ("n", Jsonx.Int i)) n;
              Option.map (fun i -> ("lo", Jsonx.Int i)) lo;
              Option.map (fun i -> ("hi", Jsonx.Int i)) hi;
            ]
        in
        Ok
          (Jsonx.to_string
             (Jsonx.Obj
                (("id", Jsonx.Int 0) :: ("method", Jsonx.Str meth)
                :: (if params = [] then [] else [ ("params", Jsonx.Obj params) ])))))
  in
  match request with
  | Error msg -> `Error (false, msg)
  | Ok line -> (
    match Serve.with_client ~timeout addr (fun c -> Serve.call c line) with
    | response ->
      print_endline response;
      let ok =
        match Jsonx.parse response with
        | Ok r -> Jsonx.member "ok" r = Some (Jsonx.Bool true)
        | Error _ -> false
      in
      if ok then `Ok () else `Error (false, "server returned an error")
    | exception Failure msg -> `Error (false, msg)
    | exception Unix.Unix_error (e, fn, arg) ->
      `Error (false, Printf.sprintf "%s(%s): %s" fn arg (Unix.error_message e)))

let call_cmd =
  let addr =
    let doc = "Server address: $(b,unix:PATH) or $(b,tcp:HOST:PORT)." in
    Arg.(required & opt (some address_conv) None & info [ "a"; "addr" ] ~docv:"ADDR" ~doc)
  in
  let timeout =
    Arg.(value & opt float 30.0 & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Reply timeout.")
  in
  let meth =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"METHOD" ~doc:"ping, stats, info, check, or census-shard.")
  in
  let game =
    Arg.(value & opt (some game_conv) None & info [ "game" ] ~doc:game_doc)
  in
  let g6 =
    Arg.(value & opt (some string) None & info [ "graph6" ] ~docv:"GRAPH6" ~doc:"Graph for info/check.")
  in
  let kind =
    Arg.(value & opt (some string) None & info [ "kind" ] ~doc:"Census kind: trees or graphs.")
  in
  let n = Arg.(value & opt (some int) None & info [ "n" ] ~doc:"Census vertex count.") in
  let lo = Arg.(value & opt (some int) None & info [ "lo" ] ~doc:"Census shard start rank.") in
  let hi = Arg.(value & opt (some int) None & info [ "hi" ] ~doc:"Census shard end rank.") in
  let raw =
    Arg.(
      value
      & opt (some string) None
      & info [ "raw" ] ~docv:"LINE" ~doc:"Send $(docv) verbatim instead of building a request.")
  in
  Cmd.v
    (Cmd.info "call" ~doc:"Send one request to a running bncg serve and print the reply")
    Term.(
      ret
        (const call $ addr $ timeout $ meth $ game $ g6 $ kind $ n $ lo $ hi
       $ raw))

(* --- atlas --------------------------------------------------------------- *)

let atlas_dir_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"DIR" ~doc:"Atlas directory.")

let atlas_stats dir =
  match Atlas.open_ ~readonly:true dir with
  | Error msg -> `Error (false, msg)
  | Ok a ->
    let s = Atlas.stats a in
    Atlas.close a;
    Printf.printf "segments: %d\n" s.Atlas.segments;
    Printf.printf "records: %d\n" s.Atlas.records;
    Printf.printf "bytes: %d\n" s.Atlas.bytes;
    Printf.printf "snapshot used: %b\n" s.Atlas.snapshot_used;
    Printf.printf "torn tails skipped: %d\n" s.Atlas.torn_records;
    Printf.printf "corrupt records skipped: %d\n" s.Atlas.corrupt_records;
    `Ok ()

let atlas_verify dir =
  match Atlas.verify dir with
  | Error msg -> `Error (false, msg)
  | Ok r ->
    Printf.printf "segments: %d\n" r.Atlas.v_segments;
    Printf.printf "records: %d (%d live)\n" r.Atlas.v_records r.Atlas.v_live;
    Printf.printf "bytes: %d\n" r.Atlas.v_bytes;
    Printf.printf "torn tails: %d\n" r.Atlas.v_torn;
    Printf.printf "corrupt records: %d\n" r.Atlas.v_corrupt;
    if r.Atlas.v_corrupt = 0 then `Ok ()
    else
      `Error
        ( false,
          Printf.sprintf "%d record(s) failed their checksum" r.Atlas.v_corrupt
        )

let atlas_compact dir =
  match Atlas.compact dir with
  | Error msg -> `Error (false, msg)
  | Ok r ->
    Printf.printf "segments: %d -> %d\n" r.Atlas.c_segments_before
      r.Atlas.c_segments_after;
    Printf.printf "records: %d -> %d live\n" r.Atlas.c_records_before
      r.Atlas.c_live;
    Printf.printf "bytes: %d -> %d\n" r.Atlas.c_bytes_before
      r.Atlas.c_bytes_after;
    `Ok ()

let atlas_cmd =
  let stats_cmd =
    Cmd.v
      (Cmd.info "stats"
         ~doc:
           "Open the atlas read-only and print segment/record counts and \
            what recovery (if any) the open performed")
      Term.(ret (const atlas_stats $ atlas_dir_arg))
  in
  let verify_cmd =
    Cmd.v
      (Cmd.info "verify"
         ~doc:
           "Re-read every segment from byte 0 and checksum every record. \
            Exits non-zero if any well-framed record fails its checksum; \
            torn tails (expected after a crash) are reported but are not \
            an error, since reopening truncates them away.")
      Term.(ret (const atlas_verify $ atlas_dir_arg))
  in
  let compact_cmd =
    Cmd.v
      (Cmd.info "compact"
         ~doc:
           "Rewrite live records (first write wins, valid checksums only) \
            into fresh segments and delete the old ones. Crash-safe: new \
            segments land before any old segment is removed.")
      Term.(ret (const atlas_compact $ atlas_dir_arg))
  in
  Cmd.group
    (Cmd.info "atlas"
       ~doc:"Inspect and maintain a persistent equilibrium atlas directory")
    [ stats_cmd; verify_cmd; compact_cmd ]

(* --- main ---------------------------------------------------------------- *)

let () =
  let doc = "basic network creation games (Alon, Demaine, Hajiaghayi, Leighton; SPAA 2010)" in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "bncg" ~version:"1.0.0" ~doc)
          [
            generate_cmd;
            info_cmd;
            check_cmd;
            dynamics_cmd;
            census_cmd;
            experiment_cmd;
            hunt_cmd;
            audit_cmd;
            serve_cmd;
            call_cmd;
            atlas_cmd;
          ]))
